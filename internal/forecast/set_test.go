package forecast

import (
	"errors"
	"math"
	"testing"
)

// setFixture builds a two-cluster training input with distinct diurnal
// patterns plus one sampled antenna per cluster.
func setFixture(t testing.TB) []ClusterSeries {
	t.Helper()
	morning := synthetic(3, 0, 0, 1)
	evening := synthetic(3, 0.001, 0, 2)
	// Shift the second cluster's series so its busy hour differs.
	shifted := make([]float64, len(evening))
	for i := range evening {
		shifted[i] = evening[(i+6)%len(evening)]
	}
	return []ClusterSeries{
		{Cluster: 0, Members: 40, Series: morning,
			Antennas: []AntennaSeries{{Antenna: 3, Series: morning}}},
		{Cluster: 1, Members: 25, Series: shifted,
			Antennas: []AntennaSeries{{Antenna: 9, Series: shifted}}},
	}
}

func TestFitSetShapes(t *testing.T) {
	set, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if set.K() != 2 || len(set.Antennas) != 2 {
		t.Fatalf("K=%d antennas=%d, want 2/2", set.K(), len(set.Antennas))
	}
	if set.Season != SeasonLength || set.Hours != 3*SeasonLength {
		t.Fatalf("season %d hours %d", set.Season, set.Hours)
	}
	cm := set.Cluster(0)
	if cm == nil || cm.Members != 40 || cm.Sampled != 1 {
		t.Fatalf("cluster 0 model %+v", cm)
	}
	if cm.BusyHour < 0 || cm.BusyHour >= SeasonLength {
		t.Fatalf("busy hour %d out of hour-of-week range", cm.BusyHour)
	}
	if cm.PeakMB <= 0 {
		t.Fatalf("peak %v, want positive", cm.PeakMB)
	}
	if set.Cluster(-1) != nil || set.Cluster(2) != nil {
		t.Fatal("out-of-range cluster lookup should be nil")
	}
	if am := set.Antenna(9); am == nil || am.Cluster != 1 {
		t.Fatalf("antenna 9 model %+v", set.Antenna(9))
	}
	if set.Antenna(4) != nil {
		t.Fatal("unsampled antenna lookup should be nil")
	}
}

func TestFitSetValidation(t *testing.T) {
	fix := setFixture(t)
	if _, err := FitSet(nil, Config{}); err == nil {
		t.Fatal("empty input must error")
	}
	out := []ClusterSeries{fix[1], fix[0]}
	if _, err := FitSet(out, Config{}); err == nil {
		t.Fatal("out-of-order clusters must error")
	}
	short := []ClusterSeries{{Cluster: 0, Members: 1, Series: make([]float64, SeasonLength)}}
	if _, err := FitSet(short, Config{}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short series: %v, want ErrTooShort", err)
	}
	ragged := []ClusterSeries{fix[0], {Cluster: 1, Members: 1, Series: make([]float64, 2*SeasonLength)}}
	if _, err := FitSet(ragged, Config{}); err == nil {
		t.Fatal("ragged series lengths must error")
	}
}

func TestFitAllZeroSeries(t *testing.T) {
	// An all-zero antenna (dark building, dead sector) must fit to an
	// all-zero forecast, not NaN.
	m, err := Fit(make([]float64, 2*SeasonLength), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Forecast(48) {
		if v != 0 {
			t.Fatalf("forecast[%d] = %v, want 0", i, v)
		}
	}
}

func TestFitRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		series := synthetic(2, 0, 0, 1)
		series[100] = bad
		if _, err := Fit(series, Config{}); err == nil {
			t.Fatalf("sample %v must be rejected", bad)
		}
	}
}

func TestSetDigestDeterministicAndSensitive(t *testing.T) {
	a, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical training inputs must digest identically")
	}
	// Perturb one training sample: the digest must move.
	fix := setFixture(t)
	fix[0].Series[7] += 1.0
	c, err := FitSet(fix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("changed series produced an unchanged digest")
	}
	var nilSet *Set
	if nilSet.Digest() != 0 {
		t.Fatal("nil set must digest to 0")
	}
}

func TestPlanBaselineIdentity(t *testing.T) {
	set, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := set.Plan(nil, 168)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	for _, cp := range res.Clusters {
		if cp.AntennasBefore != cp.AntennasAfter {
			t.Fatalf("no actions but population moved: %+v", cp)
		}
		if cp.DeltaMB != 0 {
			t.Fatalf("no actions but delta %v != 0", cp.DeltaMB)
		}
	}
	if res.TotalPlannedMB != res.TotalBaselineMB {
		t.Fatalf("totals diverged with no actions: %v vs %v", res.TotalPlannedMB, res.TotalBaselineMB)
	}
}

func TestPlanAddRemoveReassign(t *testing.T) {
	set, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := set.Plan([]Action{
		{Op: OpAddAntennas, Cluster: 0, Count: 10},
		{Op: OpRemoveAntennas, Cluster: 1, Count: 5},
		{Op: OpReassign, Cluster: 1, ToCluster: 0, Count: 2},
	}, 24)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := res.Clusters[0], res.Clusters[1]
	if c0.AntennasAfter != 52 || c1.AntennasAfter != 18 {
		t.Fatalf("populations %d/%d, want 52/18", c0.AntennasAfter, c1.AntennasAfter)
	}
	if c0.DeltaMB <= 0 {
		t.Fatalf("adding antennas must raise peak load, delta %v", c0.DeltaMB)
	}
	if c1.DeltaMB >= 0 {
		t.Fatalf("removing antennas must lower peak load, delta %v", c1.DeltaMB)
	}
	// Population scaling is exact: planned peak = after/before × baseline.
	want := c0.BaselineMB * 52 / 40
	if math.Abs(c0.PlannedMB-want) > 1e-9*want {
		t.Fatalf("cluster 0 planned %v, want %v", c0.PlannedMB, want)
	}
}

func TestPlanShiftEventsMovesBusyHour(t *testing.T) {
	set, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := set.Plan(nil, 168)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := set.Plan([]Action{{Op: OpShiftEvents, Cluster: 0, Hours: 5}}, 168)
	if err != nil {
		t.Fatal(err)
	}
	b, s := base.Clusters[0], shifted.Clusters[0]
	if got, want := s.BusyHour, (b.BusyHour+5)%SeasonLength; got != want {
		t.Fatalf("busy hour %d after +5h shift, want %d", got, want)
	}
	// A pure rotation preserves the peak value over a full-season window.
	if math.Float64bits(s.PlannedMB) != math.Float64bits(b.PlannedMB) {
		t.Fatalf("rotation changed the peak: %v vs %v", s.PlannedMB, b.PlannedMB)
	}
}

func TestPlanValidation(t *testing.T) {
	set, err := FitSet(setFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		actions []Action
		horizon int
	}{
		{"zero horizon", nil, 0},
		{"unknown op", []Action{{Op: "demolish", Cluster: 0}}, 24},
		{"cluster out of range", []Action{{Op: OpAddAntennas, Cluster: 7}}, 24},
		{"negative count", []Action{{Op: OpAddAntennas, Cluster: 0, Count: -3}}, 24},
		{"remove too many", []Action{{Op: OpRemoveAntennas, Cluster: 1, Count: 999}}, 24},
		{"reassign to self", []Action{{Op: OpReassign, Cluster: 0, ToCluster: 0}}, 24},
		{"reassign out of range", []Action{{Op: OpReassign, Cluster: 0, ToCluster: 9}}, 24},
	}
	for _, tc := range cases {
		if _, err := set.Plan(tc.actions, tc.horizon); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	var nilSet *Set
	if _, err := nilSet.Plan(nil, 24); err == nil {
		t.Fatal("nil set must error")
	}
}
