// Package rng provides deterministic pseudo-random number generation and the
// sampling distributions needed by the synthetic nationwide traffic model.
//
// Everything in this package is seeded explicitly: two runs with the same
// seed produce byte-identical datasets, which is what makes the experiment
// harness reproducible. The core generator is splitmix64 (used for seeding)
// feeding a xoshiro256** state, the same construction used by modern
// standard libraries.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit seed via splitmix64,
// guaranteeing a well-mixed initial state even for small seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child generator from the current state.
// It advances the parent, so repeated calls yield distinct children.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		//lint:allow nopanic documented parameter contract, mirrors math/rand
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)), drawing from
// the source exactly as Perm does: callers that switch between the two (to
// reuse a scratch buffer on a hot path) consume identical generator state
// and therefore stay bit-compatible with Perm-based code.
func (r *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a sample from the standard normal distribution using the
// Marsaglia polar method.
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalScaled returns a sample from N(mu, sigma^2).
func (r *Source) NormalScaled(mu, sigma float64) float64 {
	return mu + sigma*r.Normal()
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2). It is the
// canonical model for per-antenna traffic volumes, which span orders of
// magnitude in the measured network.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalScaled(mu, sigma))
}

// Exponential returns a sample from Exp(rate).
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		//lint:allow nopanic documented parameter contract, mirrors math/rand
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a sample from Poisson(lambda). For small lambda it uses
// Knuth's product method; for large lambda the PTRS transformed-rejection
// method keeps the cost O(1).
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann 1993).
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(lambda)-lambda-lg {
			return int(k)
		}
	}
}

// Gamma returns a sample from Gamma(shape, 1) using the Marsaglia-Tsang
// method; for shape < 1 it applies the standard boost trick.
func (r *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		//lint:allow nopanic documented parameter contract, mirrors math/rand
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		return r.Gamma(shape+1) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a sample from Dirichlet(alpha). The result sums
// to 1. Zero or negative alpha entries yield a zero weight for that
// component. It panics if len(out) != len(alpha).
func (r *Source) Dirichlet(alpha []float64, out []float64) {
	if len(out) != len(alpha) {
		//lint:allow nopanic documented parameter contract, caller allocates both slices
		panic("rng: Dirichlet output length mismatch")
	}
	var sum float64
	for i, a := range alpha {
		if a <= 0 {
			out[i] = 0
			continue
		}
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate: spread uniformly to keep the invariant sum==1.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Zipf returns ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, the classic heavy-tailed popularity law for mobile
// services. The sampler precomputes the CDF; use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		//lint:allow nopanic documented parameter contract, mirrors math/rand
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weights returns the normalized Zipf probability mass over the n ranks.
func (z *Zipf) Weights() []float64 {
	w := make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		w[i] = c - prev
		prev = c
	}
	return w
}

// Choice samples an index in [0, len(weights)) proportionally to the given
// non-negative weights. It panics on an empty or all-zero weight vector.
func (r *Source) Choice(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			//lint:allow nopanic documented parameter contract for compiled-in weight tables
			panic("rng: Choice with negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		//lint:allow nopanic documented parameter contract for compiled-in weight tables
		panic("rng: Choice with zero total weight")
	}
	u := r.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
