package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling children produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal produced non-positive sample")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v too far from 0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 80, 300} {
		r := New(23)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) should be 0")
	}
	if New(1).Poisson(-3) != 0 {
		t.Fatal("Poisson(negative) should be 0")
	}
}

func TestGammaMeanVariance(t *testing.T) {
	for _, shape := range []float64{0.3, 1, 2.5, 9} {
		r := New(29)
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Fatalf("Gamma(%v) variance %v", shape, variance)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(31)
	alpha := []float64{0.5, 2, 1, 4, 0.1}
	out := make([]float64, len(alpha))
	for i := 0; i < 1000; i++ {
		r.Dirichlet(alpha, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum %v != 1", sum)
		}
	}
}

func TestDirichletZeroAlpha(t *testing.T) {
	r := New(37)
	out := make([]float64, 3)
	r.Dirichlet([]float64{0, 0, 0}, out)
	for _, v := range out {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("degenerate Dirichlet should be uniform, got %v", out)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Higher total concentration means samples hug the mean more tightly.
	r := New(41)
	mean := []float64{0.5, 0.3, 0.2}
	spread := func(scale float64) float64 {
		alpha := make([]float64, len(mean))
		for i := range alpha {
			alpha[i] = mean[i] * scale
		}
		out := make([]float64, len(mean))
		var dev float64
		for i := 0; i < 2000; i++ {
			r.Dirichlet(alpha, out)
			for j := range out {
				d := out[j] - mean[j]
				dev += d * d
			}
		}
		return dev
	}
	if spread(200) >= spread(2) {
		t.Fatal("higher concentration should reduce deviation from mean")
	}
}

func TestZipfHeavyTail(t *testing.T) {
	r := New(43)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	z := NewZipf(New(1), 73, 1.1)
	w := z.Weights()
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d non-positive", i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf weights sum %v", sum)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(47)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight option chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v far from 3", ratio)
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

// Property: Intn is always within bounds for any positive n and seed.
func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dirichlet output always sums to 1 for positive alphas.
func TestDirichletSumProperty(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		alpha := make([]float64, len(raw))
		for i, v := range raw {
			alpha[i] = float64(v%50)/10 + 0.1
		}
		out := make([]float64, len(alpha))
		New(seed).Dirichlet(alpha, out)
		var sum float64
		for _, v := range out {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkDirichlet73(b *testing.B) {
	r := New(1)
	alpha := make([]float64, 73)
	for i := range alpha {
		alpha[i] = 0.5
	}
	out := make([]float64, 73)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Dirichlet(alpha, out)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		a := New(42)
		b := New(42)
		want := a.Perm(n)
		got := make([]int, n)
		b.PermInto(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: PermInto diverges from Perm at %d: %v vs %v", n, i, got, want)
			}
		}
		// Both sources must land in the same state.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: PermInto consumed different generator state than Perm", n)
		}
	}
}
