package probe

import (
	"testing"
	"testing/quick"
)

func TestECGIRoundTripTwoDigitMNC(t *testing.T) {
	e := ECGI{PLMN: PLMN{MCC: 208, MNC: 1}, CellID: 0x0ABCDEF}
	b, err := EncodeECGI(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 7 {
		t.Fatalf("encoded length %d", len(b))
	}
	got, err := DecodeECGI(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v vs %+v", got, e)
	}
}

func TestECGIRoundTripThreeDigitMNC(t *testing.T) {
	e := ECGI{PLMN: PLMN{MCC: 310, MNC: 410, ThreeDigitMNC: true}, CellID: 77}
	b, err := EncodeECGI(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeECGI(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v vs %+v", got, e)
	}
}

func TestECGIBCDLayout(t *testing.T) {
	// MCC 208, MNC 01 (two digits): byte0 = 0x02 | 0<<4 = 0x02? The BCD
	// layout places mcc digit1 low, digit2 high: 2 | 0<<4 = 0x02;
	// byte1 = mcc3 | filler<<4 = 8 | 0xF0; byte2 = mnc1 | mnc2<<4.
	b, err := EncodeECGI(ECGI{PLMN: PLMN{MCC: 208, MNC: 1}, CellID: 0})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x02 || b[1] != 0xF8 || b[2] != 0x10 {
		t.Fatalf("BCD bytes = % X", b[:3])
	}
}

func TestECGIErrors(t *testing.T) {
	if _, err := EncodeECGI(ECGI{PLMN: FrancePLMN, CellID: MaxCellID + 1}); err != ErrCellIDRange {
		t.Fatalf("cell id range: %v", err)
	}
	if _, err := EncodeECGI(ECGI{PLMN: PLMN{MCC: 1000, MNC: 1}}); err == nil {
		t.Fatal("MCC range should fail")
	}
	if _, err := EncodeECGI(ECGI{PLMN: PLMN{MCC: 208, MNC: 500}}); err == nil {
		t.Fatal("3-digit MNC without flag should fail")
	}
	if _, err := DecodeECGI([]byte{1, 2, 3}); err != ErrShortULI {
		t.Fatal("short buffer should fail")
	}
	// Non-decimal BCD nibble in the MCC.
	bad := []byte{0x0A, 0xF8, 0x10, 0, 0, 0, 0}
	if _, err := DecodeECGI(bad); err == nil {
		t.Fatal("bad BCD digit should fail")
	}
}

func TestAntennaECGIMapping(t *testing.T) {
	for _, id := range []uint32{0, 1, 4761, 123456} {
		e := ECGIForAntenna(id)
		got, ok := AntennaForECGI(e)
		if !ok || got != id {
			t.Fatalf("antenna %d mapping broken", id)
		}
	}
	foreign := ECGI{PLMN: PLMN{MCC: 262, MNC: 1}, CellID: 5}
	if _, ok := AntennaForECGI(foreign); ok {
		t.Fatal("foreign PLMN should not map")
	}
}

// Property: every valid ECGI survives an encode/decode round trip.
func TestECGIRoundTripProperty(t *testing.T) {
	f := func(mcc, mnc uint16, cell uint32, three bool) bool {
		e := ECGI{
			PLMN:   PLMN{MCC: mcc % 1000, MNC: mnc % 1000, ThreeDigitMNC: three},
			CellID: cell & MaxCellID,
		}
		if !e.PLMN.ThreeDigitMNC {
			e.PLMN.MNC %= 100
		}
		b, err := EncodeECGI(e)
		if err != nil {
			return false
		}
		got, err := DecodeECGI(b)
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
