package probe

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/services"
)

func TestWireRoundTrip(t *testing.T) {
	recs := []Record{
		{Hour: 0, AntennaID: 1, Protocol: TCP, ServerPort: 443, ServerName: "netflix.example", DownBytes: 1000, UpBytes: 50},
		{Hour: 7, AntennaID: 99, Protocol: UDP, ServerPort: 443, ServerName: "spotify.example", DownBytes: 1 << 40, UpBytes: 7},
		{Hour: 1559, AntennaID: 4761, Protocol: TCP, ServerPort: 8080, ServerName: "", DownBytes: 0, UpBytes: 0},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestEmptyStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5}))
	if _, err := r.Read(); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] = 99 // corrupt version
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Read(); err != ErrBadVersion {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{ServerName: "x.example", DownBytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-3]))
	if _, err := r.Read(); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestLongServerNameRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	if err := w.Write(Record{ServerName: string(long)}); err == nil {
		t.Fatal("expected error for oversized server name")
	}
}

func TestClassifierCoversCatalog(t *testing.T) {
	c := NewClassifier()
	for _, s := range services.All() {
		id, ok := c.Classify(Record{ServerName: DomainOf(s.ID)})
		if !ok || id != s.ID {
			t.Fatalf("service %q not classified from its domain %q", s.Name, DomainOf(s.ID))
		}
	}
}

func TestClassifierUnknown(t *testing.T) {
	c := NewClassifier()
	if _, ok := c.Classify(Record{ServerName: "evil.invalid"}); ok {
		t.Fatal("unknown domain should not classify")
	}
}

func TestClassifierCaseInsensitive(t *testing.T) {
	c := NewClassifier()
	want := services.MustID("Netflix")
	id, ok := c.Classify(Record{ServerName: "NETFLIX.EXAMPLE"})
	if !ok || id != want {
		t.Fatal("classification should ignore case")
	}
}

func TestDomainsUnique(t *testing.T) {
	seen := map[string]string{}
	for _, s := range services.All() {
		d := DomainOf(s.ID)
		if prev, dup := seen[d]; dup {
			t.Fatalf("domain %q shared by %q and %q", d, prev, s.Name)
		}
		seen[d] = s.Name
	}
}

func TestGenerateSessionsConservesBytes(t *testing.T) {
	r := rng.New(5)
	perService := make([]float64, services.M)
	perService[0] = 12.5
	perService[10] = 3.25
	perService[50] = 0.01
	recs := GenerateSessions(42, 7, perService, r)
	sums := make(map[int]uint64)
	c := NewClassifier()
	for _, rec := range recs {
		if rec.Hour != 42 || rec.AntennaID != 7 {
			t.Fatal("record metadata wrong")
		}
		id, ok := c.Classify(rec)
		if !ok {
			t.Fatal("generated session must classify")
		}
		sums[id] += rec.DownBytes + rec.UpBytes
	}
	for j, mb := range perService {
		if mb == 0 {
			continue
		}
		got := float64(sums[j]) / 1e6
		if math.Abs(got-mb) > 1e-5 {
			t.Fatalf("service %d: sessions carry %v MB, want %v", j, got, mb)
		}
	}
}

func TestGenerateSessionsSkipsZero(t *testing.T) {
	r := rng.New(1)
	perService := make([]float64, services.M)
	if recs := GenerateSessions(0, 0, perService, r); len(recs) != 0 {
		t.Fatal("no traffic should produce no sessions")
	}
}

func TestEndToEndAggregation(t *testing.T) {
	// sessions → wire → reader → classifier → aggregator reproduces the
	// input hour × service matrix exactly (modulo byte rounding).
	r := rng.New(11)
	type cell struct {
		hour    uint32
		antenna uint32
		mb      []float64
	}
	cells := []cell{
		{hour: 0, antenna: 0, mb: sparse(3, 10.0, 7, 2.0)},
		{hour: 1, antenna: 0, mb: sparse(3, 5.0)},
		{hour: 0, antenna: 1, mb: sparse(20, 1.5, 30, 0.25)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, c := range cells {
		for _, rec := range GenerateSessions(c.hour, c.antenna, c.mb, r) {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator(NewClassifier())
	if err := agg.AddStream(NewReader(&buf)); err != nil {
		t.Fatal(err)
	}
	if agg.UnclassifiedMB != 0 {
		t.Fatalf("unclassified traffic %v", agg.UnclassifiedMB)
	}
	for _, c := range cells {
		for j, mb := range c.mb {
			if mb == 0 {
				continue
			}
			got := agg.HourlyMB(c.antenna, j, c.hour)
			if math.Abs(got-mb) > 1e-4 {
				t.Fatalf("antenna %d service %d hour %d: %v want %v", c.antenna, j, c.hour, got, mb)
			}
		}
	}
	// Totals equal the sum over hours.
	if got := agg.TotalMB(0, 3); math.Abs(got-15.0) > 1e-4 {
		t.Fatalf("total antenna 0 service 3 = %v, want 15", got)
	}
	if got := agg.AntennaTotalMB(0); math.Abs(got-17.0) > 1e-4 {
		t.Fatalf("antenna 0 total = %v, want 17", got)
	}
	if agg.Sessions == 0 {
		t.Fatal("no sessions counted")
	}
}

func TestAggregatorUnclassified(t *testing.T) {
	agg := NewAggregator(NewClassifier())
	agg.Add(Record{ServerName: "mystery.invalid", DownBytes: 2e6})
	if math.Abs(agg.UnclassifiedMB-2.0) > 1e-9 {
		t.Fatalf("unclassified = %v", agg.UnclassifiedMB)
	}
}

func sparse(kv ...interface{}) []float64 {
	out := make([]float64, services.M)
	for i := 0; i < len(kv); i += 2 {
		out[kv[i].(int)] = kv[i+1].(float64)
	}
	return out
}

// Property: any record with a short server name survives a wire round trip.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(hour, antenna uint32, port uint16, name []byte, down, up uint64) bool {
		if len(name) > 200 {
			name = name[:200]
		}
		rec := Record{
			Hour: hour, AntennaID: antenna, Protocol: TCP,
			ServerPort: port, ServerName: string(name),
			DownBytes: down, UpBytes: up,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWireWrite(b *testing.B) {
	rec := Record{Hour: 5, AntennaID: 77, Protocol: TCP, ServerPort: 443, ServerName: "netflix.example", DownBytes: 1e7, UpBytes: 1e5}
	w := NewWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	c := NewClassifier()
	rec := Record{ServerName: "netflix.example"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(rec)
	}
}
