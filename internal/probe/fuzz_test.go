package probe

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReaderNeverPanics feeds arbitrary bytes to the probe stream reader;
// it must reject malformed input with an error, never panic or loop.
func FuzzReaderNeverPanics(f *testing.F) {
	// Seed with a valid single-record stream and some corruptions.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{Hour: 1, AntennaID: 2, Protocol: TCP, ServerPort: 443, ServerName: "netflix.example", DownBytes: 10, UpBytes: 1})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x43, 0x4e, 0x50, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err != nil {
				return // EOF or a framing error: both fine
			}
		}
		// 1000 records from a fuzz input would mean a runaway loop.
		if len(data) < 1000*28 {
			t.Fatal("reader produced more records than the input can hold")
		}
	})
}

// FuzzECGIDecode feeds arbitrary bytes to the ECGI decoder; valid decodes
// must re-encode to the same bytes.
func FuzzECGIDecode(f *testing.F) {
	seed, _ := EncodeECGI(ECGI{PLMN: FrancePLMN, CellID: 12345})
	f.Add(seed)
	f.Add([]byte{0x02, 0xF8, 0x10, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeECGI(data)
		if err != nil {
			return
		}
		out, err := EncodeECGI(e)
		if err != nil {
			t.Fatalf("decoded ECGI %+v fails to re-encode: %v", e, err)
		}
		// The spare nibble of byte 3 is masked on decode; compare the
		// semantic fields instead of raw bytes.
		back, err := DecodeECGI(out)
		if err != nil || back != e {
			t.Fatalf("re-encode round trip: %+v vs %+v (%v)", back, e, err)
		}
	})
}

// FuzzWriterReaderRoundTrip checks arbitrary record fields survive the
// codec.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint16(0), "", uint64(0), uint64(0))
	f.Add(uint32(1559), uint32(4761), uint16(443), "netflix.example", uint64(1<<40), uint64(7))

	f.Fuzz(func(t *testing.T, hour, antenna uint32, port uint16, name string, down, up uint64) {
		if len(name) > 255 {
			name = name[:255]
		}
		rec := Record{
			Hour: hour, AntennaID: antenna, Protocol: UDP,
			ServerPort: port, ServerName: name,
			DownBytes: down, UpBytes: up,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if got != rec {
			t.Fatalf("round trip: %+v vs %+v", got, rec)
		}
		if _, err := NewReader(&buf).Read(); err != io.EOF && err != nil {
			_ = err // second reader sees an empty stream; either EOF path is fine
		}
	})
}
