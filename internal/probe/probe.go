// Package probe reproduces the measurement-collection substrate of
// Section 3: passive probes on the Gi/SGi/Gn interfaces record TCP and UDP
// sessions, a traffic classifier maps each session to a mobile service from
// deep-packet-inspection features (here: server name and port), sessions
// are geo-referenced to the serving base station through the User Location
// Information carried on the GTP-C control plane, and everything is
// aggregated into per-hour, per-antenna, per-service traffic.
//
// The paper's probes are proprietary; this package implements the same
// pipeline over synthetic sessions so that the exact data-reduction path —
// session stream → classification → hourly per-BTS aggregation — is
// exercised and testable end to end. A compact binary wire format makes
// the streams storable and replayable.
package probe

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rng"
	"repro/internal/services"
)

// Protocol is the transport protocol of a session.
type Protocol uint8

// Transport protocols observed by the probes.
const (
	TCP Protocol = 6
	UDP Protocol = 17
)

// Record is one TCP/UDP session observed by a probe, already
// geo-referenced to its serving antenna via the GTP-C ULI field.
type Record struct {
	// Hour is the absolute hour index within the measurement calendar.
	Hour uint32
	// AntennaID is the serving BTS, from the session's ULI.
	AntennaID uint32
	// Protocol is TCP or UDP.
	Protocol Protocol
	// ServerPort is the remote port of the session.
	ServerPort uint16
	// ServerName is the TLS SNI / HTTP host observed by DPI.
	ServerName string
	// DownBytes and UpBytes are the session's byte counts.
	DownBytes, UpBytes uint64
}

// TotalMB returns the session volume in megabytes.
func (r Record) TotalMB() float64 {
	return float64(r.DownBytes+r.UpBytes) / 1e6
}

// --- Wire format -----------------------------------------------------------

// Magic and version identify the probe stream framing.
const (
	Magic   uint32 = 0x49434e50 // "ICNP"
	Version uint16 = 1
)

var (
	// ErrBadMagic reports a stream that does not start with the probe
	// framing magic.
	ErrBadMagic = errors.New("probe: bad stream magic")
	// ErrBadVersion reports an unsupported stream version.
	ErrBadVersion = errors.New("probe: unsupported stream version")
)

// Writer encodes records into a probe stream.
type Writer struct {
	w       *bufio.Writer
	started bool
}

// NewWriter returns a Writer emitting to w. The header is written lazily on
// the first record (or on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (pw *Writer) ensureHeader() error {
	if pw.started {
		return nil
	}
	pw.started = true
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	binary.BigEndian.PutUint16(hdr[4:6], Version)
	_, err := pw.w.Write(hdr[:])
	return err
}

// Write appends one record to the stream.
func (pw *Writer) Write(r Record) error {
	if err := pw.ensureHeader(); err != nil {
		return err
	}
	if len(r.ServerName) > 255 {
		return fmt.Errorf("probe: server name too long (%d bytes)", len(r.ServerName))
	}
	var buf [28]byte
	binary.BigEndian.PutUint32(buf[0:4], r.Hour)
	binary.BigEndian.PutUint32(buf[4:8], r.AntennaID)
	buf[8] = byte(r.Protocol)
	binary.BigEndian.PutUint16(buf[9:11], r.ServerPort)
	binary.BigEndian.PutUint64(buf[11:19], r.DownBytes)
	binary.BigEndian.PutUint64(buf[19:27], r.UpBytes)
	buf[27] = byte(len(r.ServerName))
	if _, err := pw.w.Write(buf[:]); err != nil {
		return err
	}
	_, err := pw.w.WriteString(r.ServerName)
	return err
}

// Flush writes any buffered data (and the header for empty streams).
func (pw *Writer) Flush() error {
	if err := pw.ensureHeader(); err != nil {
		return err
	}
	return pw.w.Flush()
}

// Reader decodes a probe stream.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a Reader over r; the header is validated on the first
// Read call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (pr *Reader) readHeader() error {
	var hdr [6]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return ErrBadMagic
	}
	if binary.BigEndian.Uint16(hdr[4:6]) != Version {
		return ErrBadVersion
	}
	pr.header = true
	return nil
}

// Read returns the next record, or io.EOF at end of stream.
func (pr *Reader) Read() (Record, error) {
	if !pr.header {
		if err := pr.readHeader(); err != nil {
			return Record{}, err
		}
	}
	var buf [28]byte
	if _, err := io.ReadFull(pr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("probe: truncated record: %w", err)
		}
		return Record{}, err
	}
	rec := Record{
		Hour:       binary.BigEndian.Uint32(buf[0:4]),
		AntennaID:  binary.BigEndian.Uint32(buf[4:8]),
		Protocol:   Protocol(buf[8]),
		ServerPort: binary.BigEndian.Uint16(buf[9:11]),
		DownBytes:  binary.BigEndian.Uint64(buf[11:19]),
		UpBytes:    binary.BigEndian.Uint64(buf[19:27]),
	}
	nameLen := int(buf[27])
	if nameLen > 0 {
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(pr.r, name); err != nil {
			return Record{}, fmt.Errorf("probe: truncated server name: %w", err)
		}
		rec.ServerName = string(name)
	}
	return rec, nil
}

// --- Traffic classification -------------------------------------------------

// domainFor derives the canonical server domain of a service, the DPI
// feature the classifier keys on.
func domainFor(s services.Service) string {
	name := strings.ToLower(s.Name)
	name = strings.NewReplacer(" ", "", "/", "", "+", "plus", "'", "").Replace(name)
	return name + ".example"
}

// Classifier maps DPI features of a session to a mobile service, standing
// in for the operator's proprietary traffic classifiers.
type Classifier struct {
	byDomain map[string]int
}

// NewClassifier builds the rule table over the full service catalog.
func NewClassifier() *Classifier {
	c := &Classifier{byDomain: make(map[string]int, services.M)}
	for _, s := range services.All() {
		c.byDomain[domainFor(s)] = s.ID
	}
	return c
}

// Classify returns the service of a session record. Unknown server names
// return ok = false, which the aggregation counts as unclassified traffic.
func (c *Classifier) Classify(r Record) (serviceID int, ok bool) {
	id, ok := c.byDomain[strings.ToLower(r.ServerName)]
	return id, ok
}

// DomainOf exposes the canonical domain used for a service, for generators.
func DomainOf(serviceID int) string { return domainFor(services.Get(serviceID)) }

// --- Session generation -----------------------------------------------------

// GenerateSessions synthesizes the session records of one antenna-hour:
// perServiceMB[j] megabytes of service j are split into a Poisson number of
// sessions with exponential size dispersion, normalized so session bytes
// sum back to the input totals (up to 1-byte rounding per session).
func GenerateSessions(hour, antennaID uint32, perServiceMB []float64, r *rng.Source) []Record {
	var out []Record
	for j, mb := range perServiceMB {
		if mb <= 0 {
			continue
		}
		svc := services.Get(j)
		// Heavier services carry fewer, larger sessions.
		meanSessionMB := 0.5 + svc.BaseWeight/4
		n := r.Poisson(mb/meanSessionMB) + 1
		weights := make([]float64, n)
		var sum float64
		for i := range weights {
			weights[i] = r.Exponential(1)
			sum += weights[i]
		}
		totalBytes := uint64(mb * 1e6)
		var assigned uint64
		for i := range weights {
			var b uint64
			if i == len(weights)-1 {
				b = totalBytes - assigned
			} else {
				b = uint64(float64(totalBytes) * weights[i] / sum)
			}
			assigned += b
			down := b * 85 / 100 // downlink-dominated, as in cellular traffic
			proto := TCP
			if svc.Category == services.VideoStreaming || svc.Category == services.Music {
				proto = UDP // QUIC-style delivery
			}
			out = append(out, Record{
				Hour:       hour,
				AntennaID:  antennaID,
				Protocol:   proto,
				ServerPort: 443,
				ServerName: domainFor(svc),
				DownBytes:  down,
				UpBytes:    b - down,
			})
		}
	}
	return out
}

// --- Aggregation -------------------------------------------------------------

// Aggregator folds classified session records into the per-hour,
// per-antenna, per-service traffic the analysis pipeline consumes.
type Aggregator struct {
	classifier *Classifier
	// totals maps (antenna, service) to MB over all hours.
	totals map[aggKey]float64
	// hourly maps (antenna, service, hour) to MB.
	hourly map[hourKey]float64
	// UnclassifiedMB accumulates traffic with unknown server names.
	UnclassifiedMB float64
	// Sessions counts processed records.
	Sessions int
}

type aggKey struct {
	antenna uint32
	service int
}

type hourKey struct {
	antenna uint32
	service int
	hour    uint32
}

// NewAggregator returns an empty aggregator using the given classifier.
func NewAggregator(c *Classifier) *Aggregator {
	return &Aggregator{
		classifier: c,
		totals:     make(map[aggKey]float64),
		hourly:     make(map[hourKey]float64),
	}
}

// Add classifies and accumulates one record.
func (a *Aggregator) Add(r Record) {
	a.Sessions++
	mb := r.TotalMB()
	id, ok := a.classifier.Classify(r)
	if !ok {
		a.UnclassifiedMB += mb
		return
	}
	a.totals[aggKey{r.AntennaID, id}] += mb
	a.hourly[hourKey{r.AntennaID, id, r.Hour}] += mb
}

// AddStream consumes an entire probe stream.
func (a *Aggregator) AddStream(r *Reader) error {
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		a.Add(rec)
	}
}

// TotalMB returns the aggregate MB for (antenna, service) over all hours.
func (a *Aggregator) TotalMB(antenna uint32, service int) float64 {
	return a.totals[aggKey{antenna, service}]
}

// HourlyMB returns the MB for (antenna, service) in one hour bin.
func (a *Aggregator) HourlyMB(antenna uint32, service int, hour uint32) float64 {
	return a.hourly[hourKey{antenna, service, hour}]
}

// ForEachTotal invokes fn for every (antenna, service) total accumulated
// so far. Iteration order is unspecified.
func (a *Aggregator) ForEachTotal(fn func(antenna uint32, service int, mb float64)) {
	for k, v := range a.totals {
		fn(k.antenna, k.service, v)
	}
}

// AntennaTotalMB returns the total classified MB of one antenna. The
// per-service contributions are summed in service order, not map order, so
// the float result is identical across runs.
func (a *Aggregator) AntennaTotalMB(antenna uint32) float64 {
	perService := map[int]float64{}
	order := make([]int, 0, 8)
	for k, v := range a.totals {
		if k.antenna == antenna {
			perService[k.service] = v
			order = append(order, k.service)
		}
	}
	sort.Ints(order)
	var sum float64
	for _, s := range order {
		sum += perService[s]
	}
	return sum
}
