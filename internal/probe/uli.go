package probe

import (
	"errors"
	"fmt"
)

// This file implements the User Location Information (ULI) element that
// geo-references every session to its serving cell: the paper's probes
// read the ULI "present in the Packet Data Protocol (PDP) Contexts and
// Evolved Packet System (EPS) Bearers over the GPRS Tunneling Protocol
// control plane (GTP-C)" (Section 3). The encoding follows 3GPP TS 29.274:
// an ECGI is a 3-byte BCD-encoded PLMN identity followed by a 28-bit
// E-UTRAN cell identity.

// PLMN is a Public Land Mobile Network identity: a 3-digit mobile country
// code and a 2- or 3-digit mobile network code.
type PLMN struct {
	// MCC is the mobile country code, three decimal digits (208 = France).
	MCC uint16
	// MNC is the mobile network code, 0-999.
	MNC uint16
	// ThreeDigitMNC marks MNCs encoded with three digits (e.g. "001" as
	// distinct from "01").
	ThreeDigitMNC bool
}

// ECGI is an E-UTRAN cell global identifier: PLMN + 28-bit cell identity.
// The cell identity concatenates the 20-bit eNodeB id and the 8-bit cell
// id within the eNodeB.
type ECGI struct {
	PLMN PLMN
	// CellID is the 28-bit E-UTRAN cell identity.
	CellID uint32
}

// MaxCellID is the largest 28-bit cell identity.
const MaxCellID = 1<<28 - 1

// Errors returned by the ULI codec.
var (
	ErrCellIDRange = errors.New("probe: cell id exceeds 28 bits")
	ErrBadPLMN     = errors.New("probe: invalid PLMN digits")
	ErrShortULI    = errors.New("probe: ULI too short")
)

// bcd packs two decimal digits into one byte, low digit in the low nibble.
func bcd(lo, hi byte) byte { return lo&0x0f | hi<<4 }

// EncodeECGI renders the ECGI as the 7-byte wire format of TS 29.274
// §8.21.5: 3 bytes BCD PLMN, then 4 bits spare + 28 bits cell identity.
func EncodeECGI(e ECGI) ([]byte, error) {
	if e.CellID > MaxCellID {
		return nil, ErrCellIDRange
	}
	if e.PLMN.MCC > 999 || e.PLMN.MNC > 999 {
		return nil, ErrBadPLMN
	}
	if !e.PLMN.ThreeDigitMNC && e.PLMN.MNC > 99 {
		return nil, fmt.Errorf("%w: MNC %d needs three digits", ErrBadPLMN, e.PLMN.MNC)
	}
	mcc1 := byte(e.PLMN.MCC / 100)
	mcc2 := byte(e.PLMN.MCC / 10 % 10)
	mcc3 := byte(e.PLMN.MCC % 10)
	var mnc1, mnc2, mnc3 byte
	if e.PLMN.ThreeDigitMNC {
		mnc1 = byte(e.PLMN.MNC / 100)
		mnc2 = byte(e.PLMN.MNC / 10 % 10)
		mnc3 = byte(e.PLMN.MNC % 10)
	} else {
		// Two-digit MNC: the third digit position carries filler 0xF.
		mnc1 = byte(e.PLMN.MNC / 10)
		mnc2 = byte(e.PLMN.MNC % 10)
		mnc3 = 0x0f
	}
	out := make([]byte, 7)
	out[0] = bcd(mcc1, mcc2)
	out[1] = bcd(mcc3, mnc3)
	out[2] = bcd(mnc1, mnc2)
	out[3] = byte(e.CellID >> 24 & 0x0f)
	out[4] = byte(e.CellID >> 16)
	out[5] = byte(e.CellID >> 8)
	out[6] = byte(e.CellID)
	return out, nil
}

// DecodeECGI parses the 7-byte ECGI wire format.
func DecodeECGI(b []byte) (ECGI, error) {
	if len(b) < 7 {
		return ECGI{}, ErrShortULI
	}
	digit := func(nibble byte) (byte, error) {
		if nibble > 9 {
			return 0, ErrBadPLMN
		}
		return nibble, nil
	}
	mcc1, err := digit(b[0] & 0x0f)
	if err != nil {
		return ECGI{}, err
	}
	mcc2, err := digit(b[0] >> 4)
	if err != nil {
		return ECGI{}, err
	}
	mcc3, err := digit(b[1] & 0x0f)
	if err != nil {
		return ECGI{}, err
	}
	var e ECGI
	e.PLMN.MCC = uint16(mcc1)*100 + uint16(mcc2)*10 + uint16(mcc3)

	mnc3Nibble := b[1] >> 4
	mnc1, err := digit(b[2] & 0x0f)
	if err != nil {
		return ECGI{}, err
	}
	mnc2, err := digit(b[2] >> 4)
	if err != nil {
		return ECGI{}, err
	}
	if mnc3Nibble == 0x0f {
		e.PLMN.MNC = uint16(mnc1)*10 + uint16(mnc2)
	} else {
		mnc3, err := digit(mnc3Nibble)
		if err != nil {
			return ECGI{}, err
		}
		e.PLMN.ThreeDigitMNC = true
		e.PLMN.MNC = uint16(mnc1)*100 + uint16(mnc2)*10 + uint16(mnc3)
	}
	e.CellID = uint32(b[3]&0x0f)<<24 | uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return e, nil
}

// FrancePLMN is the PLMN of the studied network's country (MCC 208), with
// a representative MNC.
var FrancePLMN = PLMN{MCC: 208, MNC: 1}

// ECGIForAntenna derives a deterministic ECGI for a dataset antenna id:
// the eNodeB id encodes the antenna's site-level prefix and the low 8 bits
// the antenna ordinal, as real deployments do.
func ECGIForAntenna(antennaID uint32) ECGI {
	return ECGI{
		PLMN:   FrancePLMN,
		CellID: antennaID & MaxCellID,
	}
}

// AntennaForECGI recovers the dataset antenna id of an ECGI produced by
// ECGIForAntenna. It returns false for foreign PLMNs.
func AntennaForECGI(e ECGI) (uint32, bool) {
	if e.PLMN != FrancePLMN {
		return 0, false
	}
	return e.CellID, true
}
