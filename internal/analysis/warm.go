package analysis

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/pipe"
)

// DefaultDriftThreshold is the moved-antenna fraction past which a warm
// refresh escalates to a full re-linkage; serve's refresh controller and
// cmd/icnserve default to it.
const DefaultDriftThreshold = 0.05

// WarmConfig bounds a warm refresh.
type WarmConfig struct {
	// DriftThreshold is the fraction of reassigned antennas beyond which
	// the warm pass abandons the centroid assignment and re-runs the full
	// Ward linkage. Values <= 0 escalate on any nonzero drift.
	DriftThreshold float64
}

// RefreshStats reports what one warm refresh did.
type RefreshStats struct {
	// Drift is the fraction of antennas whose cluster membership the
	// centroid assignment changed; Reassigned and Added break it down.
	Drift      float64
	Reassigned int
	Added      int
	// Escalated is true when drift exceeded the threshold and the refresh
	// fell back to a full re-linkage.
	Escalated bool
}

// WarmRefresh is WarmRefreshContext without cancellation.
func WarmRefresh(prev *Result, traffic *mat.Dense, dirty []int, wcfg WarmConfig) (*Result, RefreshStats, error) {
	return WarmRefreshContext(context.Background(), prev, traffic, dirty, wcfg)
}

// WarmRefreshContext re-runs the servable part of the pipeline on updated
// traffic, warm-starting clustering from prev's partition. It composes the
// same sub-graphs as the cold path (stages.go): the Eq. 2 feature stage,
// an "assign" stage that keeps clean antennas in their previous cluster
// and moves only the rows listed in dirty to their nearest Ward centroid
// (escalating to a full re-linkage plus archetype re-alignment when the
// drift statistic exceeds wcfg.DriftThreshold), the model stages —
// surrogate forest retrain on the shared worker pool, environment
// contingency and outdoor classification — and the forecast stage, which
// retrains the busy-hour forecasters on the updated traffic rows so every
// revision serves forecasts matching its own ingest state. The
// model-selection sweep and temporal-cache warmup are cold-only and
// skipped.
//
// Determinism contract: with bit-identical traffic and no dirty rows, the
// result is bit-identical to the cold pipeline that produced prev —
// labels, forest, outdoor verdicts and hence the serve-side revision
// fingerprint (see the parity fixtures in warm_test.go and
// serve/refresh_test.go). traffic must have one row per indoor antenna of
// prev's dataset.
func WarmRefreshContext(ctx context.Context, prev *Result, traffic *mat.Dense, dirty []int, wcfg WarmConfig) (*Result, RefreshStats, error) {
	var st RefreshStats
	if prev == nil || prev.Surrogate == nil || len(prev.Labels) == 0 {
		return nil, st, fmt.Errorf("analysis: warm refresh needs a completed previous result")
	}
	if traffic == nil || traffic.Rows() != len(prev.Dataset.Indoor) {
		rows := 0
		if traffic != nil {
			rows = traffic.Rows()
		}
		return nil, st, fmt.Errorf("analysis: warm traffic has %d rows, dataset has %d indoor antennas",
			rows, len(prev.Dataset.Indoor))
	}
	cfg := prev.Config.withDefaults()
	// The refreshed result sees the same population with updated traffic.
	nds := *prev.Dataset
	nds.Traffic = traffic
	res := &Result{Config: cfg, Dataset: &nds, trace: obs.NewTrace()}

	threshold := wcfg.DriftThreshold
	if threshold < 0 {
		threshold = 0
	}

	g := pipe.NewGraph()
	feats := &FeatureArtifacts{}
	clus := &ClusterArtifacts{}
	model := &ModelArtifacts{}
	AddRSCAStage(g, nds.Traffic, prev.K, feats)

	g.Add("assign", []string{"rsca"}, func(ctx context.Context) error {
		clus.K = prev.K
		cents := cluster.Centroids(feats.RSCA, prev.Labels, prev.K)
		wa := cluster.WarmAssign(feats.RSCA, cents, prev.Labels, dirty)
		st.Drift, st.Reassigned, st.Added = wa.Drift, wa.Reassigned, wa.Added
		if wa.Drift <= threshold {
			clus.Labels = wa.Labels
			return nil
		}
		// The partition moved too far for centroid patching to stay
		// faithful to Ward's objective: redo the linkage from scratch.
		st.Escalated = true
		d2, err := mat.PairwiseSqDistContext(ctx, feats.RSCA)
		if err != nil {
			return err
		}
		clus.Linkage = cluster.WardFromSqDistances(d2)
		rawLabels, err := clus.Linkage.Cut(clus.K)
		if err != nil {
			return fmt.Errorf("flat cut: %w", err)
		}
		clus.Alignment = alignLabels(rawLabels, &nds, clus.K)
		clus.Labels = make([]int, len(rawLabels))
		for i, l := range rawLabels {
			clus.Labels[i] = clus.Alignment[l]
		}
		return nil
	})

	AddModelStages(g, &nds, cfg, feats, clus, model, "assign")
	fc := &ForecastArtifacts{}
	AddForecastStage(g, &nds, cfg, clus, fc, "assign")

	if err := g.Run(ctx, res.Trace()); err != nil {
		return nil, st, err
	}
	res.publish(feats, clus, model, fc)
	return res, st, nil
}
