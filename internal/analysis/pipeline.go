// Package analysis wires the substrates and core algorithms into the
// paper's full pipeline: synthetic nationwide dataset → RSCA features →
// Ward clustering with Silhouette/Dunn model selection → surrogate random
// forest → TreeSHAP interpretation → environment association → outdoor
// comparison → temporal profiles. Every experiment of the evaluation maps
// to a method of this package (see DESIGN.md's per-experiment index).
//
// The pipeline is built from composable sub-graphs (see stages.go): typed
// artifact structs flow between the feature, clustering and model stage
// builders, so the cold batch path (RunOnDatasetContext) and the warm
// incremental path (WarmRefreshContext, warm.go) share the same stage
// implementations and stay bit-identical on identical inputs.
package analysis

import (
	"context"
	"fmt"

	"repro/internal/envmodel"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Config parameterizes a full pipeline run.
type Config struct {
	// Seed drives dataset generation and every stochastic algorithm.
	Seed uint64
	// Scale multiplies the paper's antenna counts (1.0 = full scale).
	Scale float64
	// OutdoorCount overrides the outdoor population size (0 = default).
	OutdoorCount int
	// K is the flat cluster count; the paper selects 9.
	K int
	// SweepKMax bounds the Fig. 2 model-selection sweep (default 14).
	SweepKMax int
	// ForestTrees sizes the surrogate (default 100, as in the paper).
	ForestTrees int
	// ForestDepth bounds surrogate tree depth (default 12).
	ForestDepth int
	// SHAPSamplesPerCluster bounds the per-cluster explained sample count
	// (default 30 members plus 15 contrast samples).
	SHAPSamplesPerCluster int
	// ForecastSample bounds the per-cluster antenna sample the forecast
	// stage trains on (default 40, matching the temporal profile cap).
	ForecastSample int
	// TemporalExactSort computes temporal medians with the legacy
	// sort-based stats.Median instead of the default counting-sort
	// selection. The two are value-identical on every input (see
	// TestTemporalProfilesExactSortParity); the gate exists as the parity
	// reference, mirroring forest.Config.ExactSort.
	TemporalExactSort bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.K <= 0 {
		c.K = 9
	}
	if c.SweepKMax <= 0 {
		c.SweepKMax = 14
	}
	if c.ForestTrees <= 0 {
		c.ForestTrees = 100
	}
	if c.ForestDepth <= 0 {
		c.ForestDepth = 12
	}
	if c.SHAPSamplesPerCluster <= 0 {
		c.SHAPSamplesPerCluster = 30
	}
	if c.ForecastSample <= 0 {
		c.ForecastSample = defaultTemporalCap
	}
	return c
}

// Run executes the full pipeline on a freshly generated dataset.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: cancelling ctx stops
// pending stages and in-stage work loops, and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ds := synth.Generate(synth.Config{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		OutdoorCount: cfg.OutdoorCount,
	})
	return RunOnDatasetContext(ctx, ds, cfg)
}

// RunOnDataset executes the pipeline on an existing dataset.
func RunOnDataset(ds *synth.Dataset, cfg Config) (*Result, error) {
	return RunOnDatasetContext(context.Background(), ds, cfg)
}

// RunOnDatasetContext executes the cold pipeline on an existing dataset as
// a stage graph on the pipe engine, composed from the sub-graph builders in
// stages.go. Each paper section is a named stage with explicit
// dependencies; independent stages — the model-selection sweep, surrogate
// forest training, environment contingency, outdoor classification and
// temporal profiling — run concurrently on the shared worker pool, and the
// O(N²·M) pairwise distance matrix is computed once and shared between
// Ward clustering and the selection metrics. Stage failures (e.g. invalid
// RSCA features) are returned as errors wrapped with the failing stage's
// name; per-stage timings are available through Result.Trace().
func RunOnDatasetContext(ctx context.Context, ds *synth.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg, Dataset: ds, trace: obs.NewTrace()}

	g := pipe.NewGraph()
	feats := &FeatureArtifacts{}
	clus := &ClusterArtifacts{}
	model := &ModelArtifacts{}
	fc := &ForecastArtifacts{}
	AddFeatureStages(g, ds.Traffic, cfg.K, feats)
	AddClusterStages(g, ds, cfg, feats, clus)
	AddModelStages(g, ds, cfg, feats, clus, model, "labels")
	AddForecastStage(g, ds, cfg, clus, fc, "labels")

	// Section 6: warm the per-cluster temporal profile cache at the
	// experiment suite's sample cap, overlapping the forest stage. The
	// clustering artifacts are bound into the Result first so the
	// memoizing profile methods see a coherent view mid-graph.
	g.Add("temporal", []string{"labels"}, func(ctx context.Context) error {
		res.adoptClusters(feats, clus)
		_, err := res.ClusterTemporalProfilesContext(ctx, defaultTemporalCap)
		return err
	})

	if err := g.Run(ctx, res.Trace()); err != nil {
		return nil, err
	}
	res.publish(feats, clus, model, fc)
	return res, nil
}

// alignLabels maps raw cluster labels to paper archetype ids by greedy
// majority matching on the label × archetype count matrix. When k differs
// from the archetype count, surplus labels keep fresh ids.
func alignLabels(rawLabels []int, ds *synth.Dataset, k int) []int {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, envmodel.NumArchetypes)
	}
	for i, l := range rawLabels {
		a := ds.Indoor[i].Archetype
		if a >= 0 {
			counts[l][a]++
		}
	}
	mapping := make([]int, k)
	for i := range mapping {
		mapping[i] = -1
	}
	usedArch := make([]bool, envmodel.NumArchetypes)
	for assigned := 0; assigned < k && assigned < envmodel.NumArchetypes; assigned++ {
		bestL, bestA, best := -1, -1, -1
		for l := 0; l < k; l++ {
			if mapping[l] >= 0 {
				continue
			}
			for a := 0; a < envmodel.NumArchetypes; a++ {
				if usedArch[a] {
					continue
				}
				if counts[l][a] > best {
					best = counts[l][a]
					bestL, bestA = l, a
				}
			}
		}
		if bestL < 0 {
			break
		}
		mapping[bestL] = bestA
		usedArch[bestA] = true
	}
	// Any unmapped labels take the remaining ids deterministically.
	next := 0
	for l := 0; l < k; l++ {
		if mapping[l] >= 0 {
			continue
		}
		for next < len(usedArch) && usedArch[next] {
			next++
		}
		if next < len(usedArch) {
			mapping[l] = next
			usedArch[next] = true
		} else {
			mapping[l] = l
		}
	}
	return mapping
}

// EnvContingency cross-tabulates cluster labels against ground-truth
// environment types.
func EnvContingency(labels []int, ds *synth.Dataset, k int) *stats.Contingency {
	rowLabels := make([]string, k)
	for i := range rowLabels {
		rowLabels[i] = fmt.Sprintf("cluster %d", i)
	}
	colLabels := make([]string, envmodel.NumEnvTypes)
	for i, e := range envmodel.AllEnvTypes() {
		colLabels[i] = e.String()
	}
	c := stats.NewContingency(rowLabels, colLabels)
	for i, l := range labels {
		env, ok := envmodel.ClassifyName(ds.Indoor[i].Name)
		if !ok {
			env = ds.Indoor[i].Env // fall back to ground truth
		}
		c.Add(l, int(env))
	}
	return c
}
