// Package analysis wires the substrates and core algorithms into the
// paper's full pipeline: synthetic nationwide dataset → RSCA features →
// Ward clustering with Silhouette/Dunn model selection → surrogate random
// forest → TreeSHAP interpretation → environment association → outdoor
// comparison → temporal profiles. Every experiment of the evaluation maps
// to a method of this package (see DESIGN.md's per-experiment index).
package analysis

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/envmodel"
	"repro/internal/forest"
	"repro/internal/geo"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/rca"
	"repro/internal/rng"
	"repro/internal/shap"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Config parameterizes a full pipeline run.
type Config struct {
	// Seed drives dataset generation and every stochastic algorithm.
	Seed uint64
	// Scale multiplies the paper's antenna counts (1.0 = full scale).
	Scale float64
	// OutdoorCount overrides the outdoor population size (0 = default).
	OutdoorCount int
	// K is the flat cluster count; the paper selects 9.
	K int
	// SweepKMax bounds the Fig. 2 model-selection sweep (default 14).
	SweepKMax int
	// ForestTrees sizes the surrogate (default 100, as in the paper).
	ForestTrees int
	// ForestDepth bounds surrogate tree depth (default 12).
	ForestDepth int
	// SHAPSamplesPerCluster bounds the per-cluster explained sample count
	// (default 30 members plus 15 contrast samples).
	SHAPSamplesPerCluster int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.K <= 0 {
		c.K = 9
	}
	if c.SweepKMax <= 0 {
		c.SweepKMax = 14
	}
	if c.ForestTrees <= 0 {
		c.ForestTrees = 100
	}
	if c.ForestDepth <= 0 {
		c.ForestDepth = 12
	}
	if c.SHAPSamplesPerCluster <= 0 {
		c.SHAPSamplesPerCluster = 30
	}
	return c
}

// Result is the full pipeline output.
type Result struct {
	Config  Config
	Dataset *synth.Dataset

	// RSCA is the N × M clustering feature matrix (Section 4.1).
	RSCA *mat.Dense
	// Linkage is the Ward dendrogram (Fig. 3).
	Linkage *cluster.Linkage
	// Selection is the Fig. 2 sweep of Silhouette and Dunn versus k.
	Selection []cluster.SelectionPoint
	// Knees are the candidate k values by steepest post-peak drop.
	Knees []int
	// K is the flat cluster count used downstream.
	K int
	// Labels holds one cluster id per indoor antenna, aligned to the
	// paper's numbering (0-8) via majority ground-truth archetype.
	Labels []int
	// LabelAlignment maps raw CutK labels to aligned paper ids.
	LabelAlignment []int

	// Surrogate is the random forest of Section 5.1.2.
	Surrogate *forest.Forest
	// SurrogateAccuracy is the surrogate's training accuracy on the
	// cluster labels.
	SurrogateAccuracy float64

	// Contingency is the cluster × environment table behind Figs. 6-8.
	Contingency *stats.Contingency

	// OutdoorLabels holds the inferred cluster of every outdoor antenna
	// (Fig. 9) and OutdoorShare the per-cluster fraction.
	OutdoorLabels []int
	OutdoorShare  []float64

	// trace holds the per-stage execution records of the staged engine.
	trace *obs.Trace

	// mu guards the lazily built caches below.
	mu sync.Mutex
	// dists is the condensed Euclidean pairwise distance matrix over the
	// RSCA rows, computed once by the distance stage and shared with every
	// downstream consumer (selection sweep, cophenetic fidelity, k-means
	// ablation). Callers must treat it as read-only.
	dists *mat.Condensed
	// temporalCache memoizes ClusterTemporalProfiles /
	// ServiceTemporalProfiles per (service, antenna-cap) pair; the
	// temporal stage warms it concurrently with forest training.
	temporalCache map[temporalKey][]TemporalProfile
}

type temporalKey struct {
	service int // -1 = total traffic
	cap     int
}

// defaultTemporalCap is the per-cluster antenna cap the temporal stage
// precomputes profiles at — the experiment suite's default sample size.
const defaultTemporalCap = 40

// Trace returns the per-stage observability records of the run that built
// this result: wall time, queueing delay, allocation delta and goroutine
// count per stage (see internal/obs). Results built outside the staged
// engine return an empty trace.
func (r *Result) Trace() *obs.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		r.trace = obs.NewTrace()
	}
	return r.trace
}

// Distances returns the condensed Euclidean pairwise distance matrix over
// the RSCA rows, computing it on first use when the result was not built
// by the staged engine. The matrix is shared: callers must not mutate it.
func (r *Result) Distances() *mat.Condensed {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dists == nil {
		r.dists = cluster.PairwiseDistances(r.RSCA)
	}
	return r.dists
}

// Run executes the full pipeline on a freshly generated dataset.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: cancelling ctx stops
// pending stages and in-stage work loops, and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ds := synth.Generate(synth.Config{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		OutdoorCount: cfg.OutdoorCount,
	})
	return RunOnDatasetContext(ctx, ds, cfg)
}

// RunOnDataset executes the pipeline on an existing dataset.
func RunOnDataset(ds *synth.Dataset, cfg Config) (*Result, error) {
	return RunOnDatasetContext(context.Background(), ds, cfg)
}

// RunOnDatasetContext executes the pipeline on an existing dataset as a
// stage graph on the pipe engine. Each paper section is a named stage with
// explicit dependencies; independent stages — the model-selection sweep,
// surrogate forest training, environment contingency, outdoor
// classification and temporal profiling — run concurrently on the shared
// worker pool, and the O(N²·M) pairwise distance matrix is computed once
// and shared between Ward clustering and the selection metrics. Stage
// failures (e.g. invalid RSCA features) are returned as errors wrapped
// with the failing stage's name; per-stage timings are available through
// Result.Trace().
func RunOnDatasetContext(ctx context.Context, ds *synth.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg, Dataset: ds, trace: obs.NewTrace()}

	// d2 carries the condensed squared distances from the distance stage
	// to the linkage stage, which consumes (mutates) them.
	var d2 *mat.Condensed

	g := pipe.NewGraph()

	// Section 4.1: feature transformation. Invalid features surface as a
	// stage error instead of a panic.
	g.Add("rsca", nil, func(ctx context.Context) error {
		if ds.Traffic == nil || ds.Traffic.Rows() < 2 {
			return fmt.Errorf("analysis: need at least 2 antennas to cluster")
		}
		res.RSCA = rca.RSCA(ds.Traffic)
		if err := rca.Validate(res.RSCA); err != nil {
			return fmt.Errorf("invalid RSCA: %w", err)
		}
		if cfg.K < 1 || cfg.K > res.RSCA.Rows() {
			return fmt.Errorf("analysis: K=%d outside [1,%d]", cfg.K, res.RSCA.Rows())
		}
		return nil
	})

	// Squared pairwise distances, computed once; the Euclidean variant the
	// selection metrics consume is a cheap copy, not a recomputation.
	g.Add("distances", []string{"rsca"}, func(ctx context.Context) error {
		var err error
		d2, err = mat.PairwiseSqDistContext(ctx, res.RSCA)
		if err != nil {
			return err
		}
		res.mu.Lock()
		res.dists = cluster.PairwiseDistancesFromSq(d2)
		res.mu.Unlock()
		return nil
	})

	// Section 4.2.1: Ward clustering from the shared squared distances.
	g.Add("linkage", []string{"distances"}, func(ctx context.Context) error {
		res.Linkage = cluster.WardFromSqDistances(d2)
		d2 = nil // consumed
		return nil
	})

	// Fig. 2: the Silhouette/Dunn model-selection sweep, concurrent with
	// everything downstream of the flat cut.
	g.Add("selection", []string{"linkage"}, func(ctx context.Context) error {
		res.Selection = cluster.SweepK(res.Linkage, res.Distances(), 2, cfg.SweepKMax)
		res.Knees = cluster.Knees(res.Selection, 3)
		return nil
	})

	// Flat cut plus alignment to the paper's cluster numbering through
	// the ground-truth archetypes (validation/reporting only).
	g.Add("labels", []string{"linkage"}, func(ctx context.Context) error {
		res.K = cfg.K
		rawLabels, err := res.Linkage.Cut(res.K)
		if err != nil {
			return fmt.Errorf("flat cut: %w", err)
		}
		res.LabelAlignment = alignLabels(rawLabels, ds, res.K)
		res.Labels = make([]int, len(rawLabels))
		for i, l := range rawLabels {
			res.Labels[i] = res.LabelAlignment[l]
		}
		return nil
	})

	// Section 5.1.2: surrogate forest on the cluster labels.
	g.Add("forest", []string{"labels"}, func(ctx context.Context) error {
		f, err := forest.TrainContext(ctx, res.RSCA, res.Labels, res.K, forest.Config{
			Trees:    cfg.ForestTrees,
			MaxDepth: cfg.ForestDepth,
			Seed:     cfg.Seed + 1,
		})
		if err != nil {
			return err
		}
		res.Surrogate = f
		res.SurrogateAccuracy = f.Accuracy(res.RSCA, res.Labels)
		return nil
	})

	// Section 5.2: environment association.
	g.Add("contingency", []string{"labels"}, func(ctx context.Context) error {
		res.Contingency = EnvContingency(res.Labels, ds, res.K)
		return nil
	})

	// Section 5.3: outdoor antennas against the indoor reference.
	g.Add("outdoor", []string{"forest"}, func(ctx context.Context) error {
		return res.classifyOutdoor(ctx)
	})

	// Section 6: warm the per-cluster temporal profile cache at the
	// experiment suite's sample cap, overlapping the forest stage.
	g.Add("temporal", []string{"labels"}, func(ctx context.Context) error {
		res.ClusterTemporalProfiles(defaultTemporalCap)
		return nil
	})

	if err := g.Run(ctx, res.trace); err != nil {
		return nil, err
	}
	return res, nil
}

// alignLabels maps raw cluster labels to paper archetype ids by greedy
// majority matching on the label × archetype count matrix. When k differs
// from the archetype count, surplus labels keep fresh ids.
func alignLabels(rawLabels []int, ds *synth.Dataset, k int) []int {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, envmodel.NumArchetypes)
	}
	for i, l := range rawLabels {
		a := ds.Indoor[i].Archetype
		if a >= 0 {
			counts[l][a]++
		}
	}
	mapping := make([]int, k)
	for i := range mapping {
		mapping[i] = -1
	}
	usedArch := make([]bool, envmodel.NumArchetypes)
	for assigned := 0; assigned < k && assigned < envmodel.NumArchetypes; assigned++ {
		bestL, bestA, best := -1, -1, -1
		for l := 0; l < k; l++ {
			if mapping[l] >= 0 {
				continue
			}
			for a := 0; a < envmodel.NumArchetypes; a++ {
				if usedArch[a] {
					continue
				}
				if counts[l][a] > best {
					best = counts[l][a]
					bestL, bestA = l, a
				}
			}
		}
		if bestL < 0 {
			break
		}
		mapping[bestL] = bestA
		usedArch[bestA] = true
	}
	// Any unmapped labels take the remaining ids deterministically.
	next := 0
	for l := 0; l < k; l++ {
		if mapping[l] >= 0 {
			continue
		}
		for next < len(usedArch) && usedArch[next] {
			next++
		}
		if next < len(usedArch) {
			mapping[l] = next
			usedArch[next] = true
		} else {
			mapping[l] = l
		}
	}
	return mapping
}

// EnvContingency cross-tabulates cluster labels against ground-truth
// environment types.
func EnvContingency(labels []int, ds *synth.Dataset, k int) *stats.Contingency {
	rowLabels := make([]string, k)
	for i := range rowLabels {
		rowLabels[i] = fmt.Sprintf("cluster %d", i)
	}
	colLabels := make([]string, envmodel.NumEnvTypes)
	for i, e := range envmodel.AllEnvTypes() {
		colLabels[i] = e.String()
	}
	c := stats.NewContingency(rowLabels, colLabels)
	for i, l := range labels {
		env, ok := envmodel.ClassifyName(ds.Indoor[i].Name)
		if !ok {
			env = ds.Indoor[i].Env // fall back to ground truth
		}
		c.Add(l, int(env))
	}
	return c
}

// classifyOutdoor computes Eq. 5 RSCA for the outdoor population and runs
// it through the surrogate forest as one pooled batch prediction.
func (r *Result) classifyOutdoor(ctx context.Context) error {
	if len(r.Dataset.Outdoor) == 0 {
		r.OutdoorShare = make([]float64, r.K)
		return nil
	}
	ref, err := rca.NewOutdoorReference(r.Dataset.Traffic)
	if err != nil {
		return fmt.Errorf("outdoor reference: %w", err)
	}
	outRSCA, err := ref.RSCAOutdoor(r.Dataset.OutdoorTraffic)
	if err != nil {
		return fmt.Errorf("outdoor RSCA: %w", err)
	}
	r.OutdoorLabels, err = r.Surrogate.PredictAllContext(ctx, outRSCA)
	if err != nil {
		return err
	}
	r.OutdoorShare = make([]float64, r.K)
	for _, l := range r.OutdoorLabels {
		r.OutdoorShare[l]++
	}
	for i := range r.OutdoorShare {
		r.OutdoorShare[i] /= float64(len(r.OutdoorLabels))
	}
	return nil
}

// ParisShareByCluster returns the fraction of each cluster's antennas
// located in the Paris region — the geography the paper reports in
// Section 5.2.2 (clusters 0 and 4 above 92% Parisian, cluster 7 entirely
// outside the capital, cluster 2 at ~92% outside Paris, cluster 3 ~70%
// Parisian).
func (r *Result) ParisShareByCluster() []float64 {
	counts := make([]int, r.K)
	paris := make([]int, r.K)
	for i, l := range r.Labels {
		counts[l]++
		if r.Dataset.Indoor[i].Paris {
			paris[l]++
		}
	}
	out := make([]float64, r.K)
	for c := range out {
		if counts[c] > 0 {
			out[c] = float64(paris[c]) / float64(counts[c])
		}
	}
	return out
}

// ProximityContrast quantifies Section 5.3's observation that "the same
// mobile applications manifest very heterogeneous behaviors between ICNs
// and outdoor BSs, even for antennas in proximity": for every indoor
// antenna with at least one outdoor neighbour within radiusMeters, it
// reports whether the majority of those neighbours carries a different
// inferred cluster.
type ProximityContrast struct {
	// IndoorWithNeighbours counts indoor antennas having ≥1 outdoor
	// neighbour within the radius.
	IndoorWithNeighbours int
	// DisagreeFraction is the fraction of those antennas whose own
	// cluster differs from the majority cluster of their neighbours.
	DisagreeFraction float64
	// MeanNeighbours is the average outdoor-neighbour count.
	MeanNeighbours float64
}

// Proximity computes the indoor/outdoor cluster contrast at the given
// radius (the paper uses 1 km).
func (r *Result) Proximity(radiusMeters float64) ProximityContrast {
	var pc ProximityContrast
	if len(r.Dataset.Outdoor) == 0 || r.OutdoorLabels == nil {
		return pc
	}
	idx := geo.NewIndex(r.Dataset.OutdoorLocations(), radiusMeters)
	totalNeighbours := 0
	disagree := 0
	for i, ant := range r.Dataset.Indoor {
		neighbours := idx.Within(ant.Location, radiusMeters)
		if len(neighbours) == 0 {
			continue
		}
		pc.IndoorWithNeighbours++
		totalNeighbours += len(neighbours)
		counts := map[int]int{}
		for _, o := range neighbours {
			counts[r.OutdoorLabels[o]]++
		}
		best, bestC := -1, -1
		for cl, c := range counts {
			if c > bestC {
				bestC = c
				best = cl
			}
		}
		if best != r.Labels[i] {
			disagree++
		}
	}
	if pc.IndoorWithNeighbours > 0 {
		pc.DisagreeFraction = float64(disagree) / float64(pc.IndoorWithNeighbours)
		pc.MeanNeighbours = float64(totalNeighbours) / float64(pc.IndoorWithNeighbours)
	}
	return pc
}

// ClusterMembers returns the indoor antenna indices of one cluster.
func (r *Result) ClusterMembers(clusterID int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == clusterID {
			out = append(out, i)
		}
	}
	return out
}

// ClusterSizes returns the antenna count per cluster.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.K)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// MeanRSCAByCluster returns, per cluster, the mean RSCA per service — the
// row blocks of the Fig. 4 heatmap.
func (r *Result) MeanRSCAByCluster() [][]float64 {
	out := make([][]float64, r.K)
	for c := 0; c < r.K; c++ {
		out[c] = r.RSCA.MeanRows(r.ClusterMembers(c))
	}
	return out
}

// ExplainCluster computes the Fig. 5 beeswarm summary of one cluster: up
// to SHAPSamplesPerCluster member antennas plus half as many non-member
// contrast antennas, explained for the cluster's class output with
// TreeSHAP. topK bounds the returned feature list (the paper shows 25).
func (r *Result) ExplainCluster(clusterID, topK int) shap.ClassSummary {
	members := r.ClusterMembers(clusterID)
	budget := r.Config.SHAPSamplesPerCluster
	samples := subsample(members, budget)
	// Deterministic contrast sample: non-members at a stride.
	var others []int
	for i, l := range r.Labels {
		if l != clusterID {
			others = append(others, i)
		}
	}
	samples = append(samples, subsample(others, budget/2)...)
	sort.Ints(samples)
	return shap.SummarizeClass(r.Surrogate, r.RSCA, clusterID, samples, topK)
}

// subsample picks up to n elements at an even stride (deterministic).
func subsample(idx []int, n int) []int {
	if len(idx) <= n || n <= 0 {
		out := make([]int, len(idx))
		copy(out, idx)
		return out
	}
	out := make([]int, 0, n)
	stride := float64(len(idx)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, idx[int(float64(i)*stride)])
	}
	return out
}

// Purity returns the fraction of antennas whose cluster's majority
// ground-truth archetype matches their own — the headline validation that
// the unsupervised pipeline re-discovers the generative structure.
func (r *Result) Purity() float64 {
	majority := make(map[int]map[int]int)
	for i, l := range r.Labels {
		if majority[l] == nil {
			majority[l] = make(map[int]int)
		}
		majority[l][r.Dataset.Indoor[i].Archetype]++
	}
	major := make(map[int]int)
	for l, counts := range majority {
		best, bestC := -1, -1
		for a, c := range counts {
			if c > bestC {
				bestC = c
				best = a
			}
		}
		major[l] = best
	}
	ok := 0
	for i, l := range r.Labels {
		if major[l] == r.Dataset.Indoor[i].Archetype {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Labels))
}

// AdjustedRandIndex measures agreement between the discovered clusters and
// the ground-truth archetypes, corrected for chance (1 = perfect).
func (r *Result) AdjustedRandIndex() float64 {
	truth := make([]int, len(r.Labels))
	for i := range truth {
		truth[i] = r.Dataset.Indoor[i].Archetype
	}
	return ARI(r.Labels, truth)
}

// StabilityReport summarizes the robustness of the clustering under
// antenna subsampling: how consistently a fresh Ward run on a random
// subset reproduces the full-population labels.
type StabilityReport struct {
	// Rounds is the number of subsample repetitions.
	Rounds int
	// MeanARI and MinARI aggregate the per-round agreement between the
	// subsample clustering and the full clustering (restricted to the
	// sampled antennas).
	MeanARI, MinARI float64
}

// Stability reclusters `rounds` random subsamples of the antennas
// (fraction frac of the population, without replacement) and measures the
// adjusted Rand index against the full-run labels. The RSCA features are
// recomputed from the traffic submatrix each round, so the subsample sees
// exactly what a smaller measurement campaign would have seen. Rounds are
// independent and run concurrently on the shared worker pool; the
// subsample permutations are drawn sequentially up front, so the report
// is identical to a serial execution.
func (r *Result) Stability(rounds int, frac float64, seed uint64) StabilityReport {
	if rounds <= 0 {
		rounds = 5
	}
	if frac <= 0 || frac > 1 {
		frac = 0.7
	}
	n := len(r.Labels)
	size := int(float64(n) * frac)
	if size < r.K*2 {
		size = min(n, r.K*2)
	}
	src := rng.New(seed)
	perms := make([][]int, rounds)
	for round := range perms {
		perm := src.Perm(n)[:size]
		sort.Ints(perm)
		perms[round] = perm
	}
	aris := make([]float64, rounds)
	pipe.Shared().ForEach(context.Background(), rounds, func(round int) {
		sub := mat.NewDense(size, r.Dataset.Traffic.Cols())
		ref := make([]int, size)
		for i, idx := range perms[round] {
			copy(sub.Row(i), r.Dataset.Traffic.Row(idx))
			ref[i] = r.Labels[idx]
		}
		features := rca.RSCA(sub)
		labels := cluster.Ward(features).CutK(r.K)
		aris[round] = ARI(labels, ref)
	})
	rep := StabilityReport{Rounds: rounds, MinARI: 2}
	var sum float64
	for _, ari := range aris {
		sum += ari
		if ari < rep.MinARI {
			rep.MinARI = ari
		}
	}
	rep.MeanARI = sum / float64(rounds)
	return rep
}

// ARI computes the adjusted Rand index between two labelings. All pair
// counts accumulate as integers — the contingency tables are maps, and
// summing floats in randomized map order would leak iteration order into
// the low bits of the result, breaking golden parity.
func ARI(a, b []int) float64 {
	if len(a) != len(b) {
		// Both labelings always describe the same antenna set.
		//lint:allow nopanic paired labelings derive from one antenna set
		panic("analysis: ARI length mismatch")
	}
	n := len(a)
	type pair struct{ x, y int }
	cont := map[pair]int{}
	aCount := map[int]int{}
	bCount := map[int]int{}
	for i := 0; i < n; i++ {
		cont[pair{a[i], b[i]}]++
		aCount[a[i]]++
		bCount[b[i]]++
	}
	// m*(m-1) is even, so choose2 is exact in int64; sums stay exact and
	// order-independent (labelings cap at millions of antennas, far from
	// overflow).
	choose2 := func(m int) int64 { return int64(m) * int64(m-1) / 2 }
	var sumCont, sumA, sumB int64
	for _, c := range cont {
		sumCont += choose2(c)
	}
	for _, c := range aCount {
		sumA += choose2(c)
	}
	for _, c := range bCount {
		sumB += choose2(c)
	}
	total := choose2(n)
	if total == 0 {
		return 1
	}
	// Degenerate-agreement guard on the integer identity
	// (sumA+sumB)/2 == sumA*sumB/total, cross-multiplied to avoid any
	// float comparison.
	if (sumA+sumB)*total == 2*sumA*sumB {
		return 1
	}
	expected := float64(sumA) * float64(sumB) / float64(total)
	maxIdx := float64(sumA+sumB) / 2
	return (float64(sumCont) - expected) / (maxIdx - expected)
}
