package analysis

import (
	"context"
	"sync"
	"testing"

	"repro/internal/services"
	"repro/internal/stats"
)

// referenceProfiles replicates the pre-optimization temporal path —
// per-antenna series recomputed per call, per-hour column gather, the
// sort-based stats.Median, stats.Normalize — as the golden parity
// reference for the cached/binned/parallel implementation.
func referenceProfiles(r *Result, serviceID, cap int) []TemporalProfile {
	firstDay, _, hours := r.windowBounds()
	out := make([]TemporalProfile, r.K)
	for c := 0; c < r.K; c++ {
		members := subsample(r.ClusterMembers(c), cap)
		med := make([]float64, hours)
		if len(members) > 0 {
			perAntenna := make([][]float64, len(members))
			for mi, m := range members {
				ant := r.Dataset.Indoor[m]
				if serviceID < 0 {
					perAntenna[mi] = r.Dataset.HourlyTotals(ant)
				} else {
					perAntenna[mi] = r.Dataset.HourlyService(ant, serviceID)
				}
			}
			offset := firstDay * 24
			column := make([]float64, len(members))
			for h := 0; h < hours; h++ {
				for mi := range members {
					column[mi] = perAntenna[mi][offset+h]
				}
				med[h] = stats.Median(column)
			}
		}
		out[c] = TemporalProfile{Cluster: c, FirstDay: firstDay, Hours: stats.Normalize(med)}
	}
	return out
}

// The rebuilt temporal stage must reproduce the pre-optimization
// profiles bit-for-bit: same medians, same normalization, for totals and
// per-service traffic alike.
func TestTemporalProfilesGoldenParity(t *testing.T) {
	r := testResult(t)
	for _, serviceID := range []int{-1, services.MustID("Netflix")} {
		var got []TemporalProfile
		if serviceID < 0 {
			got = r.ClusterTemporalProfiles(25)
		} else {
			got = r.ServiceTemporalProfiles(serviceID, 25)
		}
		want := referenceProfiles(r, serviceID, 25)
		if len(got) != len(want) {
			t.Fatalf("service %d: %d profiles, want %d", serviceID, len(got), len(want))
		}
		for c := range want {
			if got[c].Cluster != want[c].Cluster || got[c].FirstDay != want[c].FirstDay {
				t.Fatalf("service %d cluster %d: header mismatch", serviceID, c)
			}
			for h := range want[c].Hours {
				if got[c].Hours[h] != want[c].Hours[h] {
					t.Fatalf("service %d cluster %d hour %d: %v != %v (not bit-identical)",
						serviceID, c, h, got[c].Hours[h], want[c].Hours[h])
				}
			}
		}
	}
}

// The TemporalExactSort gate must be a pure parity reference: flipping
// it changes nothing in the output.
func TestTemporalProfilesExactSortParity(t *testing.T) {
	r := testResult(t)
	cfg := r.Config
	cfg.TemporalExactSort = true
	exact := &Result{Config: cfg, Dataset: r.Dataset, K: r.K, Labels: r.Labels}
	got := r.ClusterTemporalProfiles(25)
	want := exact.ClusterTemporalProfiles(25)
	for c := range want {
		for h := range want[c].Hours {
			if got[c].Hours[h] != want[c].Hours[h] {
				t.Fatalf("cluster %d hour %d: binned %v != exact-sort %v",
					c, h, got[c].Hours[h], want[c].Hours[h])
			}
		}
	}
	series, err := r.ClusterHourlySeriesContext(context.Background(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	exactSeries, err := exact.ClusterHourlySeriesContext(context.Background(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for h := range exactSeries {
		if series[h] != exactSeries[h] {
			t.Fatalf("hourly series hour %d: binned %v != exact-sort %v", h, series[h], exactSeries[h])
		}
	}
}

// Concurrent first callers of one (service, cap) key must coalesce onto
// a single computation (the check-then-store race this replaces produced
// duplicate fan-outs and divergent cached slices). Run with -race.
func TestTemporalProfilesSingleFlight(t *testing.T) {
	r := testResult(t)
	const callers = 8
	results := make([][]TemporalProfile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.ClusterTemporalProfilesContext(context.Background(), 17)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d received a distinct profile slice — computation was not single-flight", i)
		}
	}
}

// A cancelled context aborts the computation with ctx.Err() and forgets
// the in-flight entry, so a later caller retries successfully.
func TestTemporalProfilesContextCancelled(t *testing.T) {
	r := testResult(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ClusterTemporalProfilesContext(ctx, 13); err == nil {
		t.Fatal("cancelled context did not surface an error")
	}
	out, err := r.ClusterTemporalProfilesContext(context.Background(), 13)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if len(out) != r.K {
		t.Fatalf("retry returned %d profiles, want %d", len(out), r.K)
	}
	if _, err := r.ClusterHourlySeriesContext(ctx, 0, 7); err == nil {
		t.Fatal("cancelled context did not surface an error from the series path")
	}
}

// The forecasting series must match its pre-optimization derivation.
func TestClusterHourlySeriesGoldenParity(t *testing.T) {
	r := testResult(t)
	members := subsample(r.ClusterMembers(2), 10)
	hours := r.Dataset.Cal.Hours()
	perHour := make([][]float64, hours)
	for _, idx := range members {
		series := r.Dataset.HourlyTotals(r.Dataset.Indoor[idx])
		for h := 0; h < hours; h++ {
			perHour[h] = append(perHour[h], series[h])
		}
	}
	got := r.ClusterHourlySeries(2, 10)
	for h := 0; h < hours; h++ {
		if want := stats.Median(perHour[h]); got[h] != want {
			t.Fatalf("hour %d: %v != %v (not bit-identical)", h, got[h], want)
		}
	}
}
