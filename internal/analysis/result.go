package analysis

import (
	"context"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/forest"
	"repro/internal/geo"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/rca"
	"repro/internal/rng"
	"repro/internal/shap"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Result is the full pipeline output.
type Result struct {
	Config  Config
	Dataset *synth.Dataset

	// RSCA is the N × M clustering feature matrix (Section 4.1).
	RSCA *mat.Dense
	// Linkage is the Ward dendrogram (Fig. 3). Warm-refreshed results only
	// carry one when the drift statistic escalated to a full re-linkage.
	Linkage *cluster.Linkage
	// Selection is the Fig. 2 sweep of Silhouette and Dunn versus k.
	Selection []cluster.SelectionPoint
	// Knees are the candidate k values by steepest post-peak drop.
	Knees []int
	// K is the flat cluster count used downstream.
	K int
	// Labels holds one cluster id per indoor antenna, aligned to the
	// paper's numbering (0-8) via majority ground-truth archetype.
	Labels []int
	// LabelAlignment maps raw CutK labels to aligned paper ids.
	LabelAlignment []int

	// Surrogate is the random forest of Section 5.1.2.
	Surrogate *forest.Forest
	// SurrogateAccuracy is the surrogate's training accuracy on the
	// cluster labels.
	SurrogateAccuracy float64

	// Contingency is the cluster × environment table behind Figs. 6-8.
	Contingency *stats.Contingency

	// OutdoorLabels holds the inferred cluster of every outdoor antenna
	// (Fig. 9) and OutdoorShare the per-cluster fraction.
	OutdoorLabels []int
	OutdoorShare  []float64

	// Forecasts bundles the per-cluster and per-antenna busy-hour
	// forecasters trained by the forecast stage on this result's traffic
	// state (Sections 6-7 proactive management).
	Forecasts *forecast.Set

	// trace holds the per-stage execution records of the staged engine.
	trace *obs.Trace

	// mu guards the lazily built caches below.
	mu sync.Mutex
	// dists is the condensed Euclidean pairwise distance matrix over the
	// RSCA rows, computed once by the distance stage and shared with every
	// downstream consumer (selection sweep, cophenetic fidelity, k-means
	// ablation). Callers must treat it as read-only.
	dists *mat.Condensed
	// temporalCache memoizes ClusterTemporalProfilesContext /
	// ServiceTemporalProfilesContext per (service, antenna-cap) pair with
	// single-flight entries; the temporal stage warms it concurrently
	// with forest training.
	temporalCache map[temporalKey]*temporalEntry
	// seriesCache memoizes the per-antenna hourly series underneath the
	// profiles, keyed by (antenna index, service), so the expensive
	// synthesis runs once per antenna across the whole (service, cap)
	// profile key space and the forecasting series.
	seriesCache map[seriesKey][]float64
}

type temporalKey struct {
	service int // -1 = total traffic
	cap     int
}

// temporalEntry is one single-flight cache slot: the computing caller
// closes done after filling profiles/err; waiters block on done (or
// their own context).
type temporalEntry struct {
	done     chan struct{}
	profiles []TemporalProfile
	err      error
}

type seriesKey struct {
	antenna int
	service int // -1 = total traffic
}

// defaultTemporalCap is the per-cluster antenna cap the temporal stage
// precomputes profiles at — the experiment suite's default sample size.
const defaultTemporalCap = 40

// adoptClusters binds the clustering artifacts a running graph has already
// completed into the Result, giving in-graph consumers (the temporal cache
// warmer) a coherent view before the full publish. Only fields whose
// producing stages are upstream of the caller may be bound here.
func (r *Result) adoptClusters(feats *FeatureArtifacts, clus *ClusterArtifacts) {
	r.RSCA = feats.RSCA
	r.K = clus.K
	r.Labels = clus.Labels
}

// publish copies every artifact into the Result after the graph has
// finished. Re-binding fields adoptClusters already set is idempotent.
func (r *Result) publish(feats *FeatureArtifacts, clus *ClusterArtifacts, model *ModelArtifacts, fc *ForecastArtifacts) {
	r.RSCA = feats.RSCA
	r.Linkage = clus.Linkage
	r.Selection = clus.Selection
	r.Knees = clus.Knees
	r.K = clus.K
	r.Labels = clus.Labels
	r.LabelAlignment = clus.Alignment
	r.Surrogate = model.Surrogate
	r.SurrogateAccuracy = model.SurrogateAccuracy
	r.Contingency = model.Contingency
	r.OutdoorLabels = model.OutdoorLabels
	r.OutdoorShare = model.OutdoorShare
	if fc != nil {
		r.Forecasts = fc.Set
	}
	if feats.Dists != nil {
		r.mu.Lock()
		r.dists = feats.Dists
		r.mu.Unlock()
	}
}

// Trace returns the per-stage observability records of the run that built
// this result: wall time, queueing delay, allocation delta and goroutine
// count per stage (see internal/obs). Results built outside the staged
// engine return an empty trace.
func (r *Result) Trace() *obs.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		r.trace = obs.NewTrace()
	}
	return r.trace
}

// Distances returns the condensed Euclidean pairwise distance matrix over
// the RSCA rows, computing it on first use when the result was not built
// by the staged engine. The matrix is shared: callers must not mutate it.
func (r *Result) Distances() *mat.Condensed {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dists == nil {
		r.dists = cluster.PairwiseDistances(r.RSCA)
	}
	return r.dists
}

// classifyOutdoor runs the Section 5.3 outdoor classification against this
// result's dataset and surrogate, binding the outputs in place.
func (r *Result) classifyOutdoor(ctx context.Context) error {
	labels, share, err := classifyOutdoor(ctx, r.Dataset, r.Surrogate, r.K)
	if err != nil {
		return err
	}
	r.OutdoorLabels, r.OutdoorShare = labels, share
	return nil
}

// ParisShareByCluster returns the fraction of each cluster's antennas
// located in the Paris region — the geography the paper reports in
// Section 5.2.2 (clusters 0 and 4 above 92% Parisian, cluster 7 entirely
// outside the capital, cluster 2 at ~92% outside Paris, cluster 3 ~70%
// Parisian).
func (r *Result) ParisShareByCluster() []float64 {
	counts := make([]int, r.K)
	paris := make([]int, r.K)
	for i, l := range r.Labels {
		counts[l]++
		if r.Dataset.Indoor[i].Paris {
			paris[l]++
		}
	}
	out := make([]float64, r.K)
	for c := range out {
		if counts[c] > 0 {
			out[c] = float64(paris[c]) / float64(counts[c])
		}
	}
	return out
}

// ProximityContrast quantifies Section 5.3's observation that "the same
// mobile applications manifest very heterogeneous behaviors between ICNs
// and outdoor BSs, even for antennas in proximity": for every indoor
// antenna with at least one outdoor neighbour within radiusMeters, it
// reports whether the majority of those neighbours carries a different
// inferred cluster.
type ProximityContrast struct {
	// IndoorWithNeighbours counts indoor antennas having ≥1 outdoor
	// neighbour within the radius.
	IndoorWithNeighbours int
	// DisagreeFraction is the fraction of those antennas whose own
	// cluster differs from the majority cluster of their neighbours.
	DisagreeFraction float64
	// MeanNeighbours is the average outdoor-neighbour count.
	MeanNeighbours float64
}

// Proximity computes the indoor/outdoor cluster contrast at the given
// radius (the paper uses 1 km).
func (r *Result) Proximity(radiusMeters float64) ProximityContrast {
	var pc ProximityContrast
	if len(r.Dataset.Outdoor) == 0 || r.OutdoorLabels == nil {
		return pc
	}
	idx := geo.NewIndex(r.Dataset.OutdoorLocations(), radiusMeters)
	totalNeighbours := 0
	disagree := 0
	for i, ant := range r.Dataset.Indoor {
		neighbours := idx.Within(ant.Location, radiusMeters)
		if len(neighbours) == 0 {
			continue
		}
		pc.IndoorWithNeighbours++
		totalNeighbours += len(neighbours)
		counts := map[int]int{}
		for _, o := range neighbours {
			counts[r.OutdoorLabels[o]]++
		}
		best, bestC := -1, -1
		for cl, c := range counts {
			if c > bestC {
				bestC = c
				best = cl
			}
		}
		if best != r.Labels[i] {
			disagree++
		}
	}
	if pc.IndoorWithNeighbours > 0 {
		pc.DisagreeFraction = float64(disagree) / float64(pc.IndoorWithNeighbours)
		pc.MeanNeighbours = float64(totalNeighbours) / float64(pc.IndoorWithNeighbours)
	}
	return pc
}

// ClusterMembers returns the indoor antenna indices of one cluster.
func (r *Result) ClusterMembers(clusterID int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == clusterID {
			out = append(out, i)
		}
	}
	return out
}

// ClusterSizes returns the antenna count per cluster.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.K)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// MeanRSCAByCluster returns, per cluster, the mean RSCA per service — the
// row blocks of the Fig. 4 heatmap.
func (r *Result) MeanRSCAByCluster() [][]float64 {
	out := make([][]float64, r.K)
	for c := 0; c < r.K; c++ {
		out[c] = r.RSCA.MeanRows(r.ClusterMembers(c))
	}
	return out
}

// ExplainCluster computes the Fig. 5 beeswarm summary of one cluster: up
// to SHAPSamplesPerCluster member antennas plus half as many non-member
// contrast antennas, explained for the cluster's class output with
// TreeSHAP. topK bounds the returned feature list (the paper shows 25).
func (r *Result) ExplainCluster(clusterID, topK int) shap.ClassSummary {
	members := r.ClusterMembers(clusterID)
	budget := r.Config.SHAPSamplesPerCluster
	samples := subsample(members, budget)
	// Deterministic contrast sample: non-members at a stride.
	var others []int
	for i, l := range r.Labels {
		if l != clusterID {
			others = append(others, i)
		}
	}
	samples = append(samples, subsample(others, budget/2)...)
	sort.Ints(samples)
	return shap.SummarizeClass(r.Surrogate, r.RSCA, clusterID, samples, topK)
}

// subsample picks up to n elements at an even stride (deterministic).
func subsample(idx []int, n int) []int {
	if len(idx) <= n || n <= 0 {
		out := make([]int, len(idx))
		copy(out, idx)
		return out
	}
	out := make([]int, 0, n)
	stride := float64(len(idx)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, idx[int(float64(i)*stride)])
	}
	return out
}

// Purity returns the fraction of antennas whose cluster's majority
// ground-truth archetype matches their own — the headline validation that
// the unsupervised pipeline re-discovers the generative structure.
func (r *Result) Purity() float64 {
	majority := make(map[int]map[int]int)
	for i, l := range r.Labels {
		if majority[l] == nil {
			majority[l] = make(map[int]int)
		}
		majority[l][r.Dataset.Indoor[i].Archetype]++
	}
	major := make(map[int]int)
	for l, counts := range majority {
		best, bestC := -1, -1
		for a, c := range counts {
			if c > bestC {
				bestC = c
				best = a
			}
		}
		major[l] = best
	}
	ok := 0
	for i, l := range r.Labels {
		if major[l] == r.Dataset.Indoor[i].Archetype {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Labels))
}

// AdjustedRandIndex measures agreement between the discovered clusters and
// the ground-truth archetypes, corrected for chance (1 = perfect).
func (r *Result) AdjustedRandIndex() float64 {
	truth := make([]int, len(r.Labels))
	for i := range truth {
		truth[i] = r.Dataset.Indoor[i].Archetype
	}
	return ARI(r.Labels, truth)
}

// StabilityReport summarizes the robustness of the clustering under
// antenna subsampling: how consistently a fresh Ward run on a random
// subset reproduces the full-population labels.
type StabilityReport struct {
	// Rounds is the number of subsample repetitions.
	Rounds int
	// MeanARI and MinARI aggregate the per-round agreement between the
	// subsample clustering and the full clustering (restricted to the
	// sampled antennas).
	MeanARI, MinARI float64
}

// Stability reclusters `rounds` random subsamples of the antennas
// (fraction frac of the population, without replacement) and measures the
// adjusted Rand index against the full-run labels. The RSCA features are
// recomputed from the traffic submatrix each round, so the subsample sees
// exactly what a smaller measurement campaign would have seen. Rounds are
// independent and run concurrently on the shared worker pool; the
// subsample permutations are drawn sequentially up front, so the report
// is identical to a serial execution.
func (r *Result) Stability(rounds int, frac float64, seed uint64) StabilityReport {
	if rounds <= 0 {
		rounds = 5
	}
	if frac <= 0 || frac > 1 {
		frac = 0.7
	}
	n := len(r.Labels)
	size := int(float64(n) * frac)
	if size < r.K*2 {
		size = min(n, r.K*2)
	}
	src := rng.New(seed)
	perms := make([][]int, rounds)
	for round := range perms {
		perm := src.Perm(n)[:size]
		sort.Ints(perm)
		perms[round] = perm
	}
	aris := make([]float64, rounds)
	pipe.Shared().ForEach(context.Background(), rounds, func(round int) {
		sub := mat.NewDense(size, r.Dataset.Traffic.Cols())
		ref := make([]int, size)
		for i, idx := range perms[round] {
			copy(sub.Row(i), r.Dataset.Traffic.Row(idx))
			ref[i] = r.Labels[idx]
		}
		features := rca.RSCA(sub)
		labels := cluster.Ward(features).CutK(r.K)
		aris[round] = ARI(labels, ref)
	})
	rep := StabilityReport{Rounds: rounds, MinARI: 2}
	var sum float64
	for _, ari := range aris {
		sum += ari
		if ari < rep.MinARI {
			rep.MinARI = ari
		}
	}
	rep.MeanARI = sum / float64(rounds)
	return rep
}

// ARI computes the adjusted Rand index between two labelings. All pair
// counts accumulate as integers — the contingency tables are maps, and
// summing floats in randomized map order would leak iteration order into
// the low bits of the result, breaking golden parity.
func ARI(a, b []int) float64 {
	if len(a) != len(b) {
		// Both labelings always describe the same antenna set.
		//lint:allow nopanic paired labelings derive from one antenna set
		panic("analysis: ARI length mismatch")
	}
	n := len(a)
	type pair struct{ x, y int }
	cont := map[pair]int{}
	aCount := map[int]int{}
	bCount := map[int]int{}
	for i := 0; i < n; i++ {
		cont[pair{a[i], b[i]}]++
		aCount[a[i]]++
		bCount[b[i]]++
	}
	// m*(m-1) is even, so choose2 is exact in int64; sums stay exact and
	// order-independent (labelings cap at millions of antennas, far from
	// overflow).
	choose2 := func(m int) int64 { return int64(m) * int64(m-1) / 2 }
	var sumCont, sumA, sumB int64
	for _, c := range cont {
		sumCont += choose2(c)
	}
	for _, c := range aCount {
		sumA += choose2(c)
	}
	for _, c := range bCount {
		sumB += choose2(c)
	}
	total := choose2(n)
	if total == 0 {
		return 1
	}
	// Degenerate-agreement guard on the integer identity
	// (sumA+sumB)/2 == sumA*sumB/total, cross-multiplied to avoid any
	// float comparison.
	if (sumA+sumB)*total == 2*sumA*sumB {
		return 1
	}
	expected := float64(sumA) * float64(sumB) / float64(total)
	maxIdx := float64(sumA+sumB) / 2
	return (float64(sumCont) - expected) / (maxIdx - expected)
}
