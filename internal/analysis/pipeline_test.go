package analysis

import (
	"math"
	"testing"

	"repro/internal/envmodel"
	"repro/internal/services"
)

// testResult runs the pipeline once at a reduced scale and is shared by
// the tests in this file (the pipeline is deterministic).
var testResultCache *Result

func testResult(t *testing.T) *Result {
	t.Helper()
	if testResultCache == nil {
		res, err := Run(Config{
			Seed:         42,
			Scale:        0.12,
			OutdoorCount: 600,
			ForestTrees:  40,
		})
		if err != nil {
			t.Fatal(err)
		}
		testResultCache = res
	}
	return testResultCache
}

func TestPipelineRecoversNineClusters(t *testing.T) {
	r := testResult(t)
	if r.K != 9 {
		t.Fatalf("K = %d", r.K)
	}
	sizes := r.ClusterSizes()
	for c, s := range sizes {
		if s == 0 {
			t.Fatalf("cluster %d is empty: %v", c, sizes)
		}
	}
}

func TestPipelinePurityAndARI(t *testing.T) {
	r := testResult(t)
	if p := r.Purity(); p < 0.85 {
		t.Fatalf("cluster purity %.3f — pipeline failed to recover the archetypes", p)
	}
	if ari := r.AdjustedRandIndex(); ari < 0.75 {
		t.Fatalf("ARI %.3f", ari)
	}
}

func TestSelectionSweepFavorsNine(t *testing.T) {
	r := testResult(t)
	if len(r.Selection) == 0 {
		t.Fatal("no selection sweep")
	}
	// Silhouette at k=9 should be competitive: within the top third of
	// the sweep, and followed by a drop at k=10 (the Fig. 2 knee).
	var s9, s10 float64
	var best float64 = -2
	for _, p := range r.Selection {
		if p.K == 9 {
			s9 = p.Silhouette
		}
		if p.K == 10 {
			s10 = p.Silhouette
		}
		if p.Silhouette > best {
			best = p.Silhouette
		}
	}
	if s9 <= 0 {
		t.Fatalf("silhouette at k=9 is %v", s9)
	}
	if s9 < 0.5*best {
		t.Fatalf("k=9 silhouette %v far below best %v", s9, best)
	}
	if s10 > s9 {
		t.Logf("note: silhouette rises at k=10 (%v > %v) — no knee at 9 for this seed", s10, s9)
	}
}

func TestSurrogateFidelity(t *testing.T) {
	r := testResult(t)
	if r.SurrogateAccuracy < 0.97 {
		t.Fatalf("surrogate accuracy %.3f — must faithfully mimic the clustering", r.SurrogateAccuracy)
	}
}

func TestLabelAlignmentIsPermutation(t *testing.T) {
	r := testResult(t)
	seen := make(map[int]bool)
	for _, m := range r.LabelAlignment {
		if m < 0 || m >= r.K || seen[m] {
			t.Fatalf("alignment not a permutation: %v", r.LabelAlignment)
		}
		seen[m] = true
	}
}

func TestOrangeClustersAreTransit(t *testing.T) {
	// Paper: clusters 0, 4 and 7 comprise solely metro and train stations.
	r := testResult(t)
	rows := r.Contingency.RowShares()
	for _, c := range []int{0, 4, 7} {
		transit := rows[c][int(envmodel.Metro)] + rows[c][int(envmodel.Train)]
		if transit < 0.9 {
			t.Fatalf("cluster %d transit share %.2f, paper says ~1.0", c, transit)
		}
	}
}

func TestCluster3IsWorkspaces(t *testing.T) {
	// Paper: more than 70% of cluster 3 antennas are workplaces.
	r := testResult(t)
	rows := r.Contingency.RowShares()
	if w := rows[3][int(envmodel.Workspace)]; w < 0.55 {
		t.Fatalf("cluster 3 workspace share %.2f", w)
	}
}

func TestStadiumsLandInGreenClusters(t *testing.T) {
	// Paper: the preponderance of stadiums is in the green group (5,6,8).
	r := testResult(t)
	cols := r.Contingency.ColShares()
	green := cols[5][int(envmodel.Stadium)] + cols[6][int(envmodel.Stadium)] + cols[8][int(envmodel.Stadium)]
	// At reduced scale a single large stadium site drawing the general
	// archetype moves the share by ~10 points; the full-scale bench
	// asserts the tighter paper bound.
	if green < 0.6 {
		t.Fatalf("green group holds %.2f of stadiums", green)
	}
}

func TestTunnelsAndAirportsInCluster1(t *testing.T) {
	// Paper: cluster 1 contains almost all airport and tunnel antennas.
	r := testResult(t)
	cols := r.Contingency.ColShares()
	if a := cols[1][int(envmodel.Airport)]; a < 0.7 {
		t.Fatalf("cluster 1 holds %.2f of airports", a)
	}
	if tu := cols[1][int(envmodel.Tunnel)]; tu < 0.7 {
		t.Fatalf("cluster 1 holds %.2f of tunnels", tu)
	}
}

func TestHospitalsInCluster2(t *testing.T) {
	// Paper: cluster 2 hosts almost all the hospitals.
	r := testResult(t)
	cols := r.Contingency.ColShares()
	// At reduced scale only a handful of hospital sites exist, so allow
	// generous slack; the full-scale bench asserts the tighter bound.
	if h := cols[2][int(envmodel.Hospital)]; h < 0.45 {
		t.Fatalf("cluster 2 holds %.2f of hospitals", h)
	}
}

func TestEnvironmentAssociationIsStrong(t *testing.T) {
	r := testResult(t)
	if v := r.Contingency.CramersV(); v < 0.5 {
		t.Fatalf("Cramér's V %.3f — cluster/environment association should be strong", v)
	}
}

func TestOutdoorCollapsesToGeneralCluster(t *testing.T) {
	// Paper Fig. 9: almost 70% of outdoor antennas fall in cluster 1, and
	// the transit/stadium/workspace clusters are nearly absent.
	r := testResult(t)
	if r.OutdoorShare[1] < 0.5 {
		t.Fatalf("outdoor share of cluster 1 = %.2f, paper reports ~0.7", r.OutdoorShare[1])
	}
	for _, c := range []int{0, 4, 7, 6, 8, 3} {
		if r.OutdoorShare[c] > 0.1 {
			t.Fatalf("outdoor share of specialized cluster %d = %.2f, should be negligible", c, r.OutdoorShare[c])
		}
	}
}

func TestMeanRSCASignatures(t *testing.T) {
	// Fig. 4: per-cluster mean RSCA shows the characterizing services.
	r := testResult(t)
	mean := r.MeanRSCAByCluster()
	spotify := services.MustID("Spotify")
	teams := services.MustID("Microsoft Teams")
	snapchat := services.MustID("Snapchat")
	// Orange clusters over-use Spotify.
	for _, c := range []int{0, 4, 7} {
		if mean[c][spotify] < 0.15 {
			t.Fatalf("cluster %d mean Spotify RSCA %.3f", c, mean[c][spotify])
		}
	}
	// Cluster 3 over-uses Teams and under-uses Spotify.
	if mean[3][teams] < 0.15 || mean[3][spotify] > 0 {
		t.Fatalf("cluster 3 Teams %.3f Spotify %.3f", mean[3][teams], mean[3][spotify])
	}
	// Stadium clusters over-use Snapchat.
	for _, c := range []int{6, 8} {
		if mean[c][snapchat] < 0.1 {
			t.Fatalf("cluster %d Snapchat RSCA %.3f", c, mean[c][snapchat])
		}
	}
}

func TestExplainClusterFindsSignatureServices(t *testing.T) {
	r := testResult(t)
	// Cluster 3 (workspaces): Teams must rank among the very top features
	// and read as over-utilized.
	sum := r.ExplainCluster(3, 25)
	teams := services.MustID("Microsoft Teams")
	rank := sum.Rank(teams)
	if rank < 0 || rank > 10 {
		t.Fatalf("Teams rank %d in cluster 3 SHAP", rank)
	}
	over, found := sum.OverUtilized(teams)
	if !found || !over {
		t.Fatal("Teams should be over-utilized in cluster 3")
	}
	// Orange cluster 0: Spotify over-utilized among top features.
	sum0 := r.ExplainCluster(0, 25)
	spotify := services.MustID("Spotify")
	if rank := sum0.Rank(spotify); rank < 0 || rank > 15 {
		t.Fatalf("Spotify rank %d in cluster 0 SHAP", rank)
	}
}

func TestClusterTemporalProfiles(t *testing.T) {
	r := testResult(t)
	profiles := r.ClusterTemporalProfiles(25)
	if len(profiles) != r.K {
		t.Fatalf("%d profiles", len(profiles))
	}
	window := profiles[0].Hours
	if len(window) != 21*24 {
		t.Fatalf("window has %d hours, want %d", len(window), 21*24)
	}
	// Normalization: max of each non-empty profile is 1.
	for _, p := range profiles {
		maxV := 0.0
		for _, v := range p.Hours {
			if v > maxV {
				maxV = v
			}
		}
		if math.Abs(maxV-1) > 1e-9 {
			t.Fatalf("cluster %d profile max %v", p.Cluster, maxV)
		}
	}
	// Orange cluster 0 peaks at commute hours; cluster 3 within office
	// hours; both idle on weekends relative to red retail cluster 2.
	p0, p3, p2 := profiles[0], profiles[3], profiles[2]
	if h := p0.PeakHour(); h < 7 || h > 19 {
		t.Fatalf("commuter peak hour %d", h)
	}
	if h := p3.PeakHour(); h < 9 || h > 18 {
		t.Fatalf("office peak hour %d", h)
	}
	if p3.WeekendWeekdayRatio(r) > 0.5 {
		t.Fatalf("office weekend ratio %.2f should be low", p3.WeekendWeekdayRatio(r))
	}
	if p2.WeekendWeekdayRatio(r) < 0.5 {
		t.Fatalf("retail weekend ratio %.2f should be high", p2.WeekendWeekdayRatio(r))
	}
	// Strike-day trough for Paris commuters, milder for regional metros.
	if dip := p0.StrikeDip(r); dip > 0.5 {
		t.Fatalf("cluster 0 strike dip %.2f, expected deep cut", dip)
	}
	p7 := profiles[7]
	if p7.StrikeDip(r) < p0.StrikeDip(r) {
		t.Fatal("strike should hit Paris commuters harder than regional metros")
	}
}

func TestServiceTemporalProfiles(t *testing.T) {
	r := testResult(t)
	teams := services.MustID("Microsoft Teams")
	profiles := r.ServiceTemporalProfiles(teams, 20)
	// Teams in cluster 3 peaks during office hours.
	if h := profiles[3].PeakHour(); h < 9 || h > 18 {
		t.Fatalf("Teams peak hour in workspaces: %d", h)
	}
	netflix := services.MustID("Netflix")
	nProfiles := r.ServiceTemporalProfiles(netflix, 20)
	// Netflix in cluster 1/2 peaks in the evening.
	if h := nProfiles[1].PeakHour(); h < 18 {
		t.Fatalf("Netflix peak hour in cluster 1: %d", h)
	}
}

func TestSankeyFlowsConsistent(t *testing.T) {
	r := testResult(t)
	flows := r.SankeyFlows()
	var total int
	for _, f := range flows {
		total += f.Count
	}
	if total != len(r.Labels) {
		t.Fatalf("flows cover %d of %d antennas", total, len(r.Labels))
	}
}

func TestProximityContrast(t *testing.T) {
	r := testResult(t)
	prox := r.Proximity(1000)
	if prox.IndoorWithNeighbours == 0 {
		t.Fatal("no indoor antenna has outdoor neighbours — generator anchoring broken")
	}
	if prox.MeanNeighbours <= 0 {
		t.Fatal("mean neighbours should be positive")
	}
	// Section 5.3: indoor demand differs from the outdoor neighbourhood
	// even in physical proximity. Outdoor antennas mostly classify into
	// cluster 1, while most indoor antennas do not.
	if prox.DisagreeFraction < 0.5 {
		t.Fatalf("proximity disagreement %.2f, expected most indoor antennas to differ", prox.DisagreeFraction)
	}
	// Degenerate radius yields nothing.
	empty := r.Proximity(0.001)
	if empty.IndoorWithNeighbours != 0 {
		t.Fatal("zero radius should find no neighbours")
	}
}

func TestClusterHourlySeries(t *testing.T) {
	r := testResult(t)
	series := r.ClusterHourlySeries(0, 10)
	if len(series) != r.Dataset.Cal.Hours() {
		t.Fatalf("series length %d", len(series))
	}
	var sum float64
	for _, v := range series {
		if v < 0 {
			t.Fatal("negative median traffic")
		}
		sum += v
	}
	if sum <= 0 {
		t.Fatal("series should carry traffic")
	}
	// Commuter cluster: weekday morning median above night median.
	day8 := series[8*24+8] // Tuesday of week 2, 08:00
	night := series[8*24+3]
	if day8 <= night {
		t.Fatalf("commuter series shape: morning %v vs night %v", day8, night)
	}
}

func TestDayRows(t *testing.T) {
	p := TemporalProfile{Hours: make([]float64, 48)}
	rows := p.DayRows()
	if len(rows) != 2 || len(rows[0]) != 24 {
		t.Fatal("day rows shape")
	}
}

func TestARIProperties(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if ARI(a, a) != 1 {
		t.Fatal("ARI of identical labelings should be 1")
	}
	perm := []int{2, 2, 0, 0, 1, 1}
	if ARI(a, perm) != 1 {
		t.Fatal("ARI must be permutation-invariant")
	}
	b := []int{0, 1, 0, 1, 0, 1}
	if v := ARI(a, b); v > 0.2 {
		t.Fatalf("unrelated labelings ARI %v", v)
	}
}

func TestSubsample(t *testing.T) {
	idx := []int{1, 2, 3, 4, 5, 6, 7, 8}
	got := subsample(idx, 4)
	if len(got) != 4 {
		t.Fatalf("subsample length %d", len(got))
	}
	all := subsample(idx, 100)
	if len(all) != len(idx) {
		t.Fatal("subsample should return all when budget exceeds input")
	}
	all[0] = 99
	if idx[0] == 99 {
		t.Fatal("subsample must copy")
	}
}
