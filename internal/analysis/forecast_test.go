package analysis

import (
	"context"
	"testing"

	"repro/internal/forecast"
)

func TestColdPipelineTrainsForecasts(t *testing.T) {
	cold := warmBase(t)
	set := cold.Forecasts
	if set == nil {
		t.Fatal("cold pipeline published no forecast set")
	}
	if set.K() != cold.K {
		t.Fatalf("forecast set has %d cluster models, want %d", set.K(), cold.K)
	}
	if set.Season != forecast.SeasonLength || set.Hours != cold.Dataset.Cal.Hours() {
		t.Fatalf("season %d hours %d, want %d/%d", set.Season, set.Hours,
			forecast.SeasonLength, cold.Dataset.Cal.Hours())
	}
	sizes := cold.ClusterSizes()
	var sampled int
	for c := 0; c < cold.K; c++ {
		cm := set.Cluster(c)
		if cm.Members != sizes[c] {
			t.Fatalf("cluster %d members %d, want %d", c, cm.Members, sizes[c])
		}
		if cm.Sampled > cm.Members || cm.Sampled > defaultTemporalCap {
			t.Fatalf("cluster %d sampled %d of %d (cap %d)", c, cm.Sampled, cm.Members, defaultTemporalCap)
		}
		sampled += cm.Sampled
	}
	if len(set.Antennas) != sampled {
		t.Fatalf("%d antenna models, want %d sampled", len(set.Antennas), sampled)
	}
}

func TestRefitForecastsMatchesPublished(t *testing.T) {
	cold := warmBase(t)
	refit, err := cold.RefitForecasts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if refit.Digest() != cold.Forecasts.Digest() {
		t.Fatal("offline refit diverged from the published forecast set")
	}
}

// TestWarmRefreshForecastParityDriftZero is the golden forecast parity
// fixture: a warm refresh over bit-identical traffic must reproduce the
// cold forecast models bit-for-bit (the digest covers every smoothing
// factor, level, trend and seasonal component).
func TestWarmRefreshForecastParityDriftZero(t *testing.T) {
	cold := warmBase(t)
	warm, st, err := WarmRefresh(cold, cold.Dataset.Traffic.Clone(), nil, WarmConfig{DriftThreshold: DefaultDriftThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift != 0 {
		t.Fatalf("drift-0 refresh reported movement: %+v", st)
	}
	if warm.Forecasts == nil {
		t.Fatal("warm refresh published no forecast set")
	}
	if warm.Forecasts.Digest() != cold.Forecasts.Digest() {
		t.Fatal("warm forecast models diverged from cold at drift 0")
	}
}

// TestWarmRefreshForecastTracksTraffic is the freshness contract: folding
// changed traffic into a refresh must retrain the forecasters on the new
// rows, not re-serve the generation-time series.
func TestWarmRefreshForecastTracksTraffic(t *testing.T) {
	cold := warmBase(t)
	traffic := cold.Dataset.Traffic.Clone()
	row := traffic.Row(0)
	for j := range row {
		row[j] *= 5
	}
	warm, _, err := WarmRefresh(cold, traffic, []int{0}, WarmConfig{DriftThreshold: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Forecasts.Digest() == cold.Forecasts.Digest() {
		t.Fatal("forecast digest unchanged after a 5x traffic surge on a sampled antenna")
	}
}
