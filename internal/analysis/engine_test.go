package analysis

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/forest"
	"repro/internal/pipe"
	"repro/internal/rca"
	"repro/internal/synth"
)

// sequentialReference recomputes the pipeline outputs exactly as the
// pre-engine sequential code did: each section in paper order, no stage
// graph, no distance sharing. The staged engine must be byte-identical to
// this on every field the figures consume.
type sequentialReference struct {
	Selection     []cluster.SelectionPoint
	Labels        []int
	Contingency   [][]int
	OutdoorLabels []int
}

func computeSequential(t *testing.T, ds *synth.Dataset, cfg Config) sequentialReference {
	t.Helper()
	cfg = cfg.withDefaults()
	rsca := rca.RSCA(ds.Traffic)
	linkage := cluster.Ward(rsca)
	d := cluster.PairwiseDistances(rsca)
	var ref sequentialReference
	var err error
	ref.Selection, err = cluster.SweepK(linkage, d, 2, cfg.SweepKMax)
	if err != nil {
		t.Fatal(err)
	}
	raw := linkage.CutK(cfg.K)
	mapping := alignLabels(raw, ds, cfg.K)
	ref.Labels = make([]int, len(raw))
	for i, l := range raw {
		ref.Labels[i] = mapping[l]
	}
	f := forest.Train(rsca, ref.Labels, cfg.K, forest.Config{
		Trees:    cfg.ForestTrees,
		MaxDepth: cfg.ForestDepth,
		Seed:     cfg.Seed + 1,
	})
	ref.Contingency = EnvContingency(ref.Labels, ds, cfg.K).Counts
	seqRes := &Result{Config: cfg, Dataset: ds, K: cfg.K, Surrogate: f}
	if err := seqRes.classifyOutdoor(context.Background()); err != nil {
		t.Fatalf("sequential outdoor classification: %v", err)
	}
	ref.OutdoorLabels = seqRes.OutdoorLabels
	return ref
}

// TestStagedMatchesSequential is the golden parity check of the engine
// refactor: for two seed/scale combinations, the staged concurrent run
// must produce byte-identical Labels, Selection, Contingency and
// OutdoorLabels to the sequential paper-order computation.
func TestStagedMatchesSequential(t *testing.T) {
	combos := []Config{
		{Seed: 3, Scale: 0.05, OutdoorCount: 200, ForestTrees: 25},
		{Seed: 11, Scale: 0.08, OutdoorCount: 300, ForestTrees: 30},
	}
	for _, cfg := range combos {
		ds := synth.Generate(synth.Config{Seed: cfg.Seed, Scale: cfg.Scale, OutdoorCount: cfg.OutdoorCount})
		res, err := RunOnDataset(ds, cfg)
		if err != nil {
			t.Fatalf("seed %d: staged run: %v", cfg.Seed, err)
		}
		ref := computeSequential(t, ds, cfg)
		if !reflect.DeepEqual(res.Labels, ref.Labels) {
			t.Errorf("seed %d: staged Labels diverge from sequential reference", cfg.Seed)
		}
		if !reflect.DeepEqual(res.Selection, ref.Selection) {
			t.Errorf("seed %d: staged Selection diverges from sequential reference", cfg.Seed)
		}
		if !reflect.DeepEqual(res.Contingency.Counts, ref.Contingency) {
			t.Errorf("seed %d: staged Contingency diverges from sequential reference", cfg.Seed)
		}
		if !reflect.DeepEqual(res.OutdoorLabels, ref.OutdoorLabels) {
			t.Errorf("seed %d: staged OutdoorLabels diverge from sequential reference", cfg.Seed)
		}
	}
}

// TestTraceRecordsEveryStage checks the observability contract: a
// successful run records one trace row per graph stage.
func TestTraceRecordsEveryStage(t *testing.T) {
	r := testResult(t)
	got := map[string]bool{}
	for _, st := range r.Trace().Stages() {
		got[st.Name] = true
		if st.Err != "" {
			t.Errorf("stage %s recorded error %q on a successful run", st.Name, st.Err)
		}
	}
	for _, name := range []string{"rsca", "distances", "linkage", "selection", "labels", "forest", "contingency", "outdoor", "temporal"} {
		if !got[name] {
			t.Errorf("stage %s missing from trace (have %v)", name, got)
		}
	}
	if r.Trace().Total() <= 0 {
		t.Error("trace total is zero")
	}
}

// TestRunContextCancellation cancels a run shortly after it starts: the
// run must return ctx's error promptly and leak no goroutines.
func TestRunContextCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, Config{Seed: 9, Scale: 0.15, OutdoorCount: 400, ForestTrees: 80})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return within 30s")
	}
	// Pool helpers and stage goroutines must drain after cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancel: %d before, %d after", before, runtime.NumGoroutine())
}

// TestInvalidFeaturesReturnStageError feeds the pipeline non-finite
// traffic: the rsca stage must fail with a wrapped StageError instead of
// panicking, and no later stage may run.
func TestInvalidFeaturesReturnStageError(t *testing.T) {
	ds := synth.Generate(synth.Config{Seed: 4, Scale: 0.04, OutdoorCount: 50})
	ds.Traffic.Row(0)[0] = math.NaN()
	res, err := RunOnDataset(ds, Config{Seed: 4, Scale: 0.04, ForestTrees: 10})
	if err == nil {
		t.Fatal("pipeline accepted NaN traffic")
	}
	if res != nil {
		t.Fatal("failed run returned a non-nil result")
	}
	var se *pipe.StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StageError", err)
	}
	if se.Stage != "rsca" {
		t.Fatalf("failure attributed to stage %q, want rsca", se.Stage)
	}
	if !strings.Contains(err.Error(), "invalid RSCA") {
		t.Fatalf("error %q does not name the RSCA validation", err)
	}
}
