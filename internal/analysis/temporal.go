package analysis

import (
	"context"

	"repro/internal/forecast"
	"repro/internal/pipe"
	"repro/internal/report"
	"repro/internal/stats"
)

// TemporalProfile is the Fig. 10/11 artifact for one cluster: the
// normalized median traffic per hour across the cluster's antennas over
// the analysis window (2023-01-04 → 2023-01-24).
type TemporalProfile struct {
	Cluster int
	// Hours holds one value per hour of the window, normalized to the
	// profile's own maximum (as the paper's heatmaps are).
	Hours []float64
	// FirstDay is the calendar day index the window starts at.
	FirstDay int
}

// windowBounds returns the analysis window and its hour count.
func (r *Result) windowBounds() (firstDay, lastDay, hours int) {
	firstDay, lastDay = r.Dataset.Cal.AnalysisWindow()
	hours = (lastDay - firstDay + 1) * 24
	return firstDay, lastDay, hours
}

// ClusterTemporalProfilesContext computes the Fig. 10 per-cluster
// heatmaps: for every cluster, the median across member antennas of
// hourly total traffic, normalized to the cluster's maximum.
// maxAntennasPerCluster bounds the per-cluster sample for tractability
// (0 = all members). Results are memoized per cap with single-flight
// semantics — concurrent callers of the same key block on one
// computation — and must be treated as read-only by callers. The only
// failure mode is ctx cancellation.
func (r *Result) ClusterTemporalProfilesContext(ctx context.Context, maxAntennasPerCluster int) ([]TemporalProfile, error) {
	return r.temporalProfiles(ctx, -1, maxAntennasPerCluster)
}

// ClusterTemporalProfiles is ClusterTemporalProfilesContext without
// cancellation.
//
// Deprecated: use ClusterTemporalProfilesContext so a cancelled pipeline
// does not keep burning the worker pool on temporal fan-out.
func (r *Result) ClusterTemporalProfiles(maxAntennasPerCluster int) []TemporalProfile {
	out, err := r.ClusterTemporalProfilesContext(context.Background(), maxAntennasPerCluster)
	if err != nil {
		// The background context is never cancelled and cancellation is
		// the only error source.
		//lint:allow nopanic background context cannot be cancelled
		panic(err)
	}
	return out
}

// ServiceTemporalProfilesContext computes the Fig. 11 heatmaps for one
// service: per cluster, the normalized median of the service's hourly
// traffic. Results are memoized per (service, cap) with single-flight
// semantics and must be treated as read-only by callers.
func (r *Result) ServiceTemporalProfilesContext(ctx context.Context, serviceID, maxAntennasPerCluster int) ([]TemporalProfile, error) {
	return r.temporalProfiles(ctx, serviceID, maxAntennasPerCluster)
}

// ServiceTemporalProfiles is ServiceTemporalProfilesContext without
// cancellation.
//
// Deprecated: use ServiceTemporalProfilesContext so a cancelled pipeline
// does not keep burning the worker pool on temporal fan-out.
func (r *Result) ServiceTemporalProfiles(serviceID int, maxAntennasPerCluster int) []TemporalProfile {
	out, err := r.ServiceTemporalProfilesContext(context.Background(), serviceID, maxAntennasPerCluster)
	if err != nil {
		//lint:allow nopanic background context cannot be cancelled
		panic(err)
	}
	return out
}

// temporalProfiles returns the memoized per-cluster profile set for one
// service (-1 = total traffic) at the given antenna cap, computing it
// with single-flight semantics on a miss: the first caller of a key
// installs an in-flight entry and computes; concurrent callers of the
// same key wait on the entry (or their own ctx) instead of duplicating
// the pool fan-out. A cancelled computation is forgotten so a later
// caller can retry.
func (r *Result) temporalProfiles(ctx context.Context, serviceID, cap int) ([]TemporalProfile, error) {
	key := temporalKey{service: serviceID, cap: cap}
	r.mu.Lock()
	if r.temporalCache == nil {
		r.temporalCache = map[temporalKey]*temporalEntry{}
	}
	e, inflight := r.temporalCache[key]
	if !inflight {
		e = &temporalEntry{done: make(chan struct{})}
		r.temporalCache[key] = e
	}
	r.mu.Unlock()

	if inflight {
		select {
		case <-e.done:
			return e.profiles, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	e.profiles, e.err = r.computeTemporalProfiles(ctx, serviceID, cap)
	if e.err != nil {
		r.mu.Lock()
		delete(r.temporalCache, key)
		r.mu.Unlock()
	}
	close(e.done)
	return e.profiles, e.err
}

// computeTemporalProfiles is the cache-miss path of temporalProfiles:
// one pool pass fills the per-antenna series cache for the union of all
// sampled members, then the per-cluster median/normalize reductions run
// concurrently, one cluster per pool item with its own scratch arenas.
func (r *Result) computeTemporalProfiles(ctx context.Context, serviceID, cap int) ([]TemporalProfile, error) {
	firstDay, _, hours := r.windowBounds()
	members := make([][]int, r.K)
	for c := 0; c < r.K; c++ {
		members[c] = subsample(r.ClusterMembers(c), cap)
	}
	if err := r.fillSeriesCache(ctx, members, serviceID); err != nil {
		return nil, err
	}
	exact := r.Config.TemporalExactSort
	out := make([]TemporalProfile, r.K)
	err := pipe.FromContext(ctx).ForEach(ctx, r.K, func(c int) {
		perAntenna := r.cachedSeries(members[c], serviceID)
		med := medianWindow(perAntenna, firstDay*24, hours, exact)
		out[c] = TemporalProfile{Cluster: c, FirstDay: firstDay, Hours: stats.Normalize(med)}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fillSeriesCache ensures the per-antenna hourly series of every listed
// member is cached for the given service (-1 = totals). The expensive
// series syntheses run once per (antenna, service) for the lifetime of
// the Result — the (service, cap) profile key space and the forecasting
// series reuse the same slices — distributed over the context's worker
// pool.
func (r *Result) fillSeriesCache(ctx context.Context, members [][]int, serviceID int) error {
	r.mu.Lock()
	if r.seriesCache == nil {
		r.seriesCache = map[seriesKey][]float64{}
	}
	var missing []int
	seen := make(map[int]bool)
	for _, ms := range members {
		for _, idx := range ms {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			if _, ok := r.seriesCache[seriesKey{antenna: idx, service: serviceID}]; !ok {
				missing = append(missing, idx)
			}
		}
	}
	r.mu.Unlock()
	if len(missing) == 0 {
		return ctx.Err()
	}
	series := make([][]float64, len(missing))
	err := pipe.FromContext(ctx).ForEach(ctx, len(missing), func(i int) {
		ant := r.Dataset.Indoor[missing[i]]
		if serviceID < 0 {
			series[i] = r.Dataset.HourlyTotals(ant)
		} else {
			series[i] = r.Dataset.HourlyService(ant, serviceID)
		}
	})
	if err != nil {
		return err
	}
	r.mu.Lock()
	for i, idx := range missing {
		r.seriesCache[seriesKey{antenna: idx, service: serviceID}] = series[i]
	}
	r.mu.Unlock()
	return nil
}

// cachedSeries returns the cached hourly series of the given members in
// member order. Every entry must have been filled by fillSeriesCache
// first; the cache only grows, so the returned slices stay valid without
// holding the lock.
func (r *Result) cachedSeries(members []int, serviceID int) [][]float64 {
	out := make([][]float64, len(members))
	r.mu.Lock()
	for i, idx := range members {
		out[i] = r.seriesCache[seriesKey{antenna: idx, service: serviceID}]
	}
	r.mu.Unlock()
	return out
}

// medianWindow reduces per-antenna hourly series to the per-hour median
// over [offset, offset+hours). One column buffer and one counting-sort
// scratch are reused across all hours; exact selects the legacy
// sort-based stats.Median instead of the default binned selection (the
// two are value-identical — see TestTemporalProfilesExactSortParity —
// so the gate exists purely as a parity reference).
func medianWindow(perAntenna [][]float64, offset, hours int, exact bool) []float64 {
	med := make([]float64, hours)
	if len(perAntenna) == 0 {
		return med
	}
	column := make([]float64, len(perAntenna))
	scratch := stats.NewMedianScratch()
	for h := 0; h < hours; h++ {
		for mi := range perAntenna {
			column[mi] = perAntenna[mi][offset+h]
		}
		if exact {
			med[h] = stats.Median(column)
		} else {
			med[h] = scratch.Median(column)
		}
	}
	return med
}

// ClusterHourlySeriesContext returns the un-normalized per-hour median
// traffic of a cluster's antennas over the *entire* measurement calendar
// (65 days), the input needed by seasonal forecasting models (the
// proactive management roadmap of Section 7). maxAntennas bounds the
// median sample. The per-antenna series are shared with the profile
// cache; the only failure mode is ctx cancellation.
func (r *Result) ClusterHourlySeriesContext(ctx context.Context, clusterID, maxAntennas int) ([]float64, error) {
	members := subsample(r.ClusterMembers(clusterID), maxAntennas)
	hours := r.Dataset.Cal.Hours()
	if len(members) == 0 {
		return make([]float64, hours), nil
	}
	if err := r.fillSeriesCache(ctx, [][]int{members}, -1); err != nil {
		return nil, err
	}
	perAntenna := r.cachedSeries(members, -1)
	return medianWindow(perAntenna, 0, hours, r.Config.TemporalExactSort), nil
}

// ClusterHourlySeries is ClusterHourlySeriesContext without cancellation.
//
// Deprecated: use ClusterHourlySeriesContext so a cancelled caller does
// not keep burning the worker pool.
func (r *Result) ClusterHourlySeries(clusterID, maxAntennas int) []float64 {
	out, err := r.ClusterHourlySeriesContext(context.Background(), clusterID, maxAntennas)
	if err != nil {
		//lint:allow nopanic background context cannot be cancelled
		panic(err)
	}
	return out
}

// RefitForecasts retrains the busy-hour forecast set from scratch on this
// result's current traffic and labels — the same deterministic fit the
// forecast stage runs, so the returned set's Digest matches
// Result.Forecasts bit-for-bit. Offline parity audits and the forecast
// benchmark's training-time measurement use it; serving reads the
// published Forecasts field instead.
func (r *Result) RefitForecasts(ctx context.Context) (*forecast.Set, error) {
	return fitForecastSet(ctx, r.Dataset, r.Config, r.K, r.Labels)
}

// DayNight splits a profile into per-day rows of 24 hours, for heatmap
// rendering (days as rows).
func (p TemporalProfile) DayRows() [][]float64 {
	days := len(p.Hours) / 24
	out := make([][]float64, days)
	for d := 0; d < days; d++ {
		out[d] = p.Hours[d*24 : (d+1)*24]
	}
	return out
}

// PeakHour returns the hour-of-day at which the profile's weekday mass
// peaks, aggregated across days.
func (p TemporalProfile) PeakHour() int {
	var byHour [24]float64
	for h, v := range p.Hours {
		byHour[h%24] += v
	}
	best, bestV := 0, -1.0
	for h, v := range byHour {
		if v > bestV {
			bestV = v
			best = h
		}
	}
	return best
}

// WeekendWeekdayRatio returns the ratio of mean weekend traffic to mean
// weekday traffic over the profile window — near zero for offices, around
// one for retail.
func (p TemporalProfile) WeekendWeekdayRatio(r *Result) float64 {
	cal := r.Dataset.Cal
	var we, wd float64
	var weN, wdN int
	for h, v := range p.Hours {
		day := p.FirstDay + h/24
		if cal.IsWeekend(day) {
			we += v
			weN++
		} else {
			wd += v
			wdN++
		}
	}
	if wdN == 0 || wd == 0 {
		return 0
	}
	return (we / float64(weN)) / (wd / float64(wdN))
}

// StrikeDip returns the ratio of strike-day traffic to the same weekday
// one week earlier (both within the window); values near 0 indicate the
// deep commuter trough of Fig. 10.
func (p TemporalProfile) StrikeDip(r *Result) float64 {
	sd := r.Dataset.Cal.StrikeDay()
	ref := sd - 7
	if sd < p.FirstDay || ref < p.FirstDay {
		return 1
	}
	var strike, refSum float64
	for h := 0; h < 24; h++ {
		strike += p.Hours[(sd-p.FirstDay)*24+h]
		refSum += p.Hours[(ref-p.FirstDay)*24+h]
	}
	if refSum == 0 {
		return 1
	}
	return strike / refSum
}

// SankeyFlows converts the contingency table into Fig. 6 flows.
func (r *Result) SankeyFlows() []report.Flow {
	var flows []report.Flow
	for i, row := range r.Contingency.Counts {
		for j, v := range row {
			if v == 0 {
				continue
			}
			flows = append(flows, report.Flow{
				From:  r.Contingency.RowLabels[i],
				To:    r.Contingency.ColLabels[j],
				Count: v,
			})
		}
	}
	return flows
}
