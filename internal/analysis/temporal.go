package analysis

import (
	"context"

	"repro/internal/pipe"
	"repro/internal/report"
	"repro/internal/stats"
)

// TemporalProfile is the Fig. 10/11 artifact for one cluster: the
// normalized median traffic per hour across the cluster's antennas over
// the analysis window (2023-01-04 → 2023-01-24).
type TemporalProfile struct {
	Cluster int
	// Hours holds one value per hour of the window, normalized to the
	// profile's own maximum (as the paper's heatmaps are).
	Hours []float64
	// FirstDay is the calendar day index the window starts at.
	FirstDay int
}

// windowBounds returns the analysis window and its hour count.
func (r *Result) windowBounds() (firstDay, lastDay, hours int) {
	firstDay, lastDay = r.Dataset.Cal.AnalysisWindow()
	hours = (lastDay - firstDay + 1) * 24
	return firstDay, lastDay, hours
}

// ClusterTemporalProfiles computes the Fig. 10 per-cluster heatmaps: for
// every cluster, the median across member antennas of hourly total
// traffic, normalized to the cluster's maximum. maxAntennasPerCluster
// bounds the per-cluster sample for tractability (0 = all members).
// Results are memoized per cap — the pipeline's temporal stage warms the
// cache concurrently with forest training — and must be treated as
// read-only by callers.
func (r *Result) ClusterTemporalProfiles(maxAntennasPerCluster int) []TemporalProfile {
	return r.temporalProfiles(-1, maxAntennasPerCluster)
}

// ServiceTemporalProfiles computes the Fig. 11 heatmaps for one service:
// per cluster, the normalized median of the service's hourly traffic.
// Results are memoized per (service, cap) and must be treated as
// read-only by callers.
func (r *Result) ServiceTemporalProfiles(serviceID int, maxAntennasPerCluster int) []TemporalProfile {
	return r.temporalProfiles(serviceID, maxAntennasPerCluster)
}

// temporalProfiles computes (or returns the memoized) per-cluster profile
// set for one service (-1 = total traffic) at the given antenna cap.
func (r *Result) temporalProfiles(serviceID, cap int) []TemporalProfile {
	key := temporalKey{service: serviceID, cap: cap}
	r.mu.Lock()
	if cached, ok := r.temporalCache[key]; ok {
		r.mu.Unlock()
		return cached
	}
	r.mu.Unlock()

	firstDay, _, hours := r.windowBounds()
	out := make([]TemporalProfile, r.K)
	for c := 0; c < r.K; c++ {
		members := subsample(r.ClusterMembers(c), cap)
		out[c] = TemporalProfile{Cluster: c, FirstDay: firstDay, Hours: medianSeries(r, members, serviceID, firstDay, hours)}
	}

	r.mu.Lock()
	if r.temporalCache == nil {
		r.temporalCache = map[temporalKey][]TemporalProfile{}
	}
	r.temporalCache[key] = out
	r.mu.Unlock()
	return out
}

// ClusterHourlySeries returns the un-normalized per-hour median traffic of
// a cluster's antennas over the *entire* measurement calendar (65 days),
// the input needed by seasonal forecasting models (the proactive
// management roadmap of Section 7). maxAntennas bounds the median sample.
func (r *Result) ClusterHourlySeries(clusterID, maxAntennas int) []float64 {
	members := subsample(r.ClusterMembers(clusterID), maxAntennas)
	hours := r.Dataset.Cal.Hours()
	if len(members) == 0 {
		return make([]float64, hours)
	}
	perHour := make([][]float64, hours)
	for h := range perHour {
		perHour[h] = make([]float64, 0, len(members))
	}
	for _, idx := range members {
		series := r.Dataset.HourlyTotals(r.Dataset.Indoor[idx])
		for h := 0; h < hours; h++ {
			perHour[h] = append(perHour[h], series[h])
		}
	}
	med := make([]float64, hours)
	for h := range med {
		med[h] = stats.Median(perHour[h])
	}
	return med
}

// medianSeries computes the per-hour median over the given antennas of
// total traffic (serviceID < 0) or one service's traffic, normalized to
// the series maximum. The per-antenna hourly series (the expensive part)
// are computed on the shared worker pool; each item fills its own slot.
func medianSeries(r *Result, members []int, serviceID, firstDay, hours int) []float64 {
	if len(members) == 0 {
		return make([]float64, hours)
	}
	perAntenna := make([][]float64, len(members))
	pipe.Shared().ForEach(context.Background(), len(members), func(mi int) {
		ant := r.Dataset.Indoor[members[mi]]
		if serviceID < 0 {
			perAntenna[mi] = r.Dataset.HourlyTotals(ant)
		} else {
			perAntenna[mi] = r.Dataset.HourlyService(ant, serviceID)
		}
	})

	offset := firstDay * 24
	med := make([]float64, hours)
	column := make([]float64, len(members))
	for h := 0; h < hours; h++ {
		for mi := range members {
			column[mi] = perAntenna[mi][offset+h]
		}
		med[h] = stats.Median(column)
	}
	return stats.Normalize(med)
}

// DayNight splits a profile into per-day rows of 24 hours, for heatmap
// rendering (days as rows).
func (p TemporalProfile) DayRows() [][]float64 {
	days := len(p.Hours) / 24
	out := make([][]float64, days)
	for d := 0; d < days; d++ {
		out[d] = p.Hours[d*24 : (d+1)*24]
	}
	return out
}

// PeakHour returns the hour-of-day at which the profile's weekday mass
// peaks, aggregated across days.
func (p TemporalProfile) PeakHour() int {
	var byHour [24]float64
	for h, v := range p.Hours {
		byHour[h%24] += v
	}
	best, bestV := 0, -1.0
	for h, v := range byHour {
		if v > bestV {
			bestV = v
			best = h
		}
	}
	return best
}

// WeekendWeekdayRatio returns the ratio of mean weekend traffic to mean
// weekday traffic over the profile window — near zero for offices, around
// one for retail.
func (p TemporalProfile) WeekendWeekdayRatio(r *Result) float64 {
	cal := r.Dataset.Cal
	var we, wd float64
	var weN, wdN int
	for h, v := range p.Hours {
		day := p.FirstDay + h/24
		if cal.IsWeekend(day) {
			we += v
			weN++
		} else {
			wd += v
			wdN++
		}
	}
	if wdN == 0 || wd == 0 {
		return 0
	}
	return (we / float64(weN)) / (wd / float64(wdN))
}

// StrikeDip returns the ratio of strike-day traffic to the same weekday
// one week earlier (both within the window); values near 0 indicate the
// deep commuter trough of Fig. 10.
func (p TemporalProfile) StrikeDip(r *Result) float64 {
	sd := r.Dataset.Cal.StrikeDay()
	ref := sd - 7
	if sd < p.FirstDay || ref < p.FirstDay {
		return 1
	}
	var strike, refSum float64
	for h := 0; h < 24; h++ {
		strike += p.Hours[(sd-p.FirstDay)*24+h]
		refSum += p.Hours[(ref-p.FirstDay)*24+h]
	}
	if refSum == 0 {
		return 1
	}
	return strike / refSum
}

// SankeyFlows converts the contingency table into Fig. 6 flows.
func (r *Result) SankeyFlows() []report.Flow {
	var flows []report.Flow
	for i, row := range r.Contingency.Counts {
		for j, v := range row {
			if v == 0 {
				continue
			}
			flows = append(flows, report.Flow{
				From:  r.Contingency.RowLabels[i],
				To:    r.Contingency.ColLabels[j],
				Count: v,
			})
		}
	}
	return flows
}
