package analysis

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/forest"
	"repro/internal/synth"
)

// TestBinnedForestGoldenParity is the golden check of the histogram-
// binning refactor at pipeline level: on the seeded synthetic dataset the
// golden fixtures use (scale 0.05 ≈ 238 indoor antennas, so every RSCA
// column stays within MaxBins distinct values), the staged run's binned
// surrogate must be bit-identical — trees, OOB accuracy, Labels and
// OutdoorLabels — to the pre-binning exact-sort implementation.
func TestBinnedForestGoldenParity(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 0.05, OutdoorCount: 200, ForestTrees: 25}
	ds := synth.Generate(synth.Config{Seed: cfg.Seed, Scale: cfg.Scale, OutdoorCount: cfg.OutdoorCount})
	res, err := RunOnDataset(ds, cfg)
	if err != nil {
		t.Fatalf("staged run: %v", err)
	}
	for j := 0; j < res.RSCA.Cols(); j++ {
		if !forest.BinFeatures(res.RSCA).Feature(j).Exact {
			t.Fatalf("fixture column %d left the exact-binning regime; shrink the fixture", j)
		}
	}

	c := cfg.withDefaults()
	exact := forest.Train(res.RSCA, res.Labels, res.K, forest.Config{
		Trees:     c.ForestTrees,
		MaxDepth:  c.ForestDepth,
		Seed:      c.Seed + 1,
		ExactSort: true,
	})
	if !reflect.DeepEqual(exact.Trees, res.Surrogate.Trees) {
		t.Fatal("binned surrogate trees diverge from the exact-sort reference")
	}
	if !reflect.DeepEqual(exact.OOBAccuracy, res.Surrogate.OOBAccuracy) {
		t.Fatalf("OOB accuracy diverges: %v vs %v", exact.OOBAccuracy, res.Surrogate.OOBAccuracy)
	}

	// Labels come from clustering and must be untouched by the forest
	// refactor; OutdoorLabels must survive an exact-reference reclassify.
	refRes := &Result{Config: c, Dataset: ds, K: res.K, Surrogate: exact}
	if err := refRes.classifyOutdoor(context.Background()); err != nil {
		t.Fatalf("reference outdoor classification: %v", err)
	}
	seq := computeSequentialLabels(t, ds, c)
	if !reflect.DeepEqual(res.Labels, seq) {
		t.Fatal("Labels diverge from the pre-binning implementation")
	}
	if !reflect.DeepEqual(res.OutdoorLabels, refRes.OutdoorLabels) {
		t.Fatal("OutdoorLabels diverge from the pre-binning implementation")
	}
}

// computeSequentialLabels recomputes the flat-cut labels the way the
// pre-binning sequential code did (forest-free, so shared with any split
// search).
func computeSequentialLabels(t *testing.T, ds *synth.Dataset, cfg Config) []int {
	t.Helper()
	ref := computeSequential(t, ds, cfg)
	return ref.Labels
}
