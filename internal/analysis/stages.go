package analysis

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/pipe"
	"repro/internal/rca"
	"repro/internal/stats"
	"repro/internal/synth"
)

// This file defines the pipeline's composable sub-graphs. Each Add*Stages
// builder registers a few named stages on a pipe.Graph and communicates
// through small typed artifact structs instead of closure-captured Result
// fields, so callers can compose exactly the sub-graphs they need: the cold
// pipeline (RunOnDatasetContext) wires features → clustering → model, while
// the warm refresh path (WarmRefreshContext) reuses the feature and model
// sub-graphs around a centroid-assignment stage of its own.

// FeatureArtifacts carries the Section 4.1 feature-stage outputs.
type FeatureArtifacts struct {
	// RSCA is the N × M clustering feature matrix (Eq. 2).
	RSCA *mat.Dense
	// SqDists holds the condensed squared pairwise distances. The linkage
	// stage consumes (mutates) it and nils the field.
	SqDists *mat.Condensed
	// Dists is the Euclidean variant shared read-only with the selection
	// sweep and any post-run consumer (cophenetic fidelity, ablations).
	Dists *mat.Condensed
}

// ClusterArtifacts carries the Section 4.2 clustering outputs — either from
// the cold linkage/cut stages or from the warm centroid-assignment stage.
type ClusterArtifacts struct {
	// Linkage is the Ward dendrogram (nil on a non-escalated warm pass).
	Linkage *cluster.Linkage
	// Selection and Knees are the Fig. 2 model-selection sweep (cold only).
	Selection []cluster.SelectionPoint
	Knees     []int
	// K is the flat cluster count used downstream.
	K int
	// Alignment maps raw cut labels to aligned paper ids (cold only).
	Alignment []int
	// Labels holds one aligned cluster id per indoor antenna.
	Labels []int
}

// ModelArtifacts carries the Section 5 model outputs.
type ModelArtifacts struct {
	// Surrogate is the random forest of Section 5.1.2 and
	// SurrogateAccuracy its training accuracy on the cluster labels.
	Surrogate         *forest.Forest
	SurrogateAccuracy float64
	// Contingency is the cluster × environment table behind Figs. 6-8.
	Contingency *stats.Contingency
	// OutdoorLabels and OutdoorShare are the Section 5.3 outputs.
	OutdoorLabels []int
	OutdoorShare  []float64
}

// AddRSCAStage registers the "rsca" stage: the Eq. 1/2 feature transform
// over the traffic matrix, with structural validation. k is checked against
// the population so downstream cuts cannot be asked for more clusters than
// antennas. Invalid features surface as a stage error instead of a panic.
func AddRSCAStage(g *pipe.Graph, traffic *mat.Dense, k int, out *FeatureArtifacts) {
	g.Add("rsca", nil, func(ctx context.Context) error {
		if traffic == nil || traffic.Rows() < 2 {
			return fmt.Errorf("analysis: need at least 2 antennas to cluster")
		}
		out.RSCA = rca.RSCA(traffic)
		if err := rca.Validate(out.RSCA); err != nil {
			return fmt.Errorf("invalid RSCA: %w", err)
		}
		if k < 1 || k > out.RSCA.Rows() {
			return fmt.Errorf("analysis: K=%d outside [1,%d]", k, out.RSCA.Rows())
		}
		return nil
	})
}

// AddFeatureStages registers the feature sub-graph: "rsca" followed by
// "distances", which computes the condensed squared pairwise distances once
// and derives the Euclidean copy shared with every downstream consumer.
func AddFeatureStages(g *pipe.Graph, traffic *mat.Dense, k int, out *FeatureArtifacts) {
	AddRSCAStage(g, traffic, k, out)
	g.Add("distances", []string{"rsca"}, func(ctx context.Context) error {
		var err error
		out.SqDists, err = mat.PairwiseSqDistContext(ctx, out.RSCA)
		if err != nil {
			return err
		}
		out.Dists = cluster.PairwiseDistancesFromSq(out.SqDists)
		return nil
	})
}

// AddClusterStages registers the cold clustering sub-graph on top of the
// feature stages: "linkage" (Ward from the shared squared distances),
// "selection" (the Fig. 2 Silhouette/Dunn sweep, concurrent with everything
// downstream of the flat cut) and "labels" (flat cut plus alignment to the
// paper's cluster numbering through the ground-truth archetypes —
// validation/reporting only).
func AddClusterStages(g *pipe.Graph, ds *synth.Dataset, cfg Config, feats *FeatureArtifacts, out *ClusterArtifacts) {
	g.Add("linkage", []string{"distances"}, func(ctx context.Context) error {
		out.Linkage = cluster.WardFromSqDistances(feats.SqDists)
		feats.SqDists = nil // consumed
		return nil
	})

	g.Add("selection", []string{"linkage"}, func(ctx context.Context) error {
		var err error
		out.Selection, err = cluster.SweepK(out.Linkage, feats.Dists, 2, cfg.SweepKMax)
		if err != nil {
			return fmt.Errorf("selection sweep: %w", err)
		}
		out.Knees = cluster.Knees(out.Selection, 3)
		return nil
	})

	g.Add("labels", []string{"linkage"}, func(ctx context.Context) error {
		out.K = cfg.K
		rawLabels, err := out.Linkage.Cut(out.K)
		if err != nil {
			return fmt.Errorf("flat cut: %w", err)
		}
		out.Alignment = alignLabels(rawLabels, ds, out.K)
		out.Labels = make([]int, len(rawLabels))
		for i, l := range rawLabels {
			out.Labels[i] = out.Alignment[l]
		}
		return nil
	})
}

// AddModelStages registers the model sub-graph: "forest" (the Section 5.1.2
// surrogate on the cluster labels), "contingency" (Section 5.2 environment
// association) and "outdoor" (Section 5.3 classification of the outdoor
// population against the indoor reference). labelsDep names the stage that
// fills clus ("labels" on the cold path, "assign" on the warm path).
func AddModelStages(g *pipe.Graph, ds *synth.Dataset, cfg Config, feats *FeatureArtifacts, clus *ClusterArtifacts, out *ModelArtifacts, labelsDep string) {
	g.Add("forest", []string{labelsDep}, func(ctx context.Context) error {
		f, err := forest.TrainContext(ctx, feats.RSCA, clus.Labels, clus.K, forest.Config{
			Trees:    cfg.ForestTrees,
			MaxDepth: cfg.ForestDepth,
			Seed:     cfg.Seed + 1,
		})
		if err != nil {
			return err
		}
		out.Surrogate = f
		out.SurrogateAccuracy = f.Accuracy(feats.RSCA, clus.Labels)
		return nil
	})

	g.Add("contingency", []string{labelsDep}, func(ctx context.Context) error {
		out.Contingency = EnvContingency(clus.Labels, ds, clus.K)
		return nil
	})

	g.Add("outdoor", []string{"forest"}, func(ctx context.Context) error {
		labels, share, err := classifyOutdoor(ctx, ds, out.Surrogate, clus.K)
		if err != nil {
			return err
		}
		out.OutdoorLabels, out.OutdoorShare = labels, share
		return nil
	})
}

// ForecastArtifacts carries the Section 6-7 proactive-management output:
// the per-cluster and per-antenna busy-hour forecasters.
type ForecastArtifacts struct {
	// Set bundles the fitted Holt-Winters models for one revision.
	Set *forecast.Set
}

// AddForecastStage registers the "forecast" stage: per-cluster and
// per-antenna Holt-Winters busy-hour forecasters trained on the hourly
// series implied by the live traffic matrix. labelsDep names the stage
// that fills clus ("labels" on the cold path, "assign" on the warm path),
// so the refresher keeps forecasts fresh per revision alongside the
// forest. The stage runs concurrently with forest training.
func AddForecastStage(g *pipe.Graph, ds *synth.Dataset, cfg Config, clus *ClusterArtifacts, out *ForecastArtifacts, labelsDep string) {
	g.Add("forecast", []string{labelsDep}, func(ctx context.Context) error {
		set, err := fitForecastSet(ctx, ds, cfg, clus.K, clus.Labels)
		if err != nil {
			return fmt.Errorf("forecast fit: %w", err)
		}
		out.Set = set
		return nil
	})
}

// fitForecastSet trains the forecast set for one (traffic, labels) state:
// per cluster, up to cfg.ForecastSample member antennas are sampled
// deterministically, their hourly series derived from the *current*
// traffic matrix rows (synth.HourlyTotalsRow — bit-identical to the
// generation series when the row is unchanged, live after a refresh
// folds new aggregates in), reduced to the cluster median, and fitted.
// The series fan-out runs on the context's worker pool; fitting itself is
// serial and deterministic.
func fitForecastSet(ctx context.Context, ds *synth.Dataset, cfg Config, k int, labels []int) (*forecast.Set, error) {
	members := make([][]int, k)
	for i, l := range labels {
		if l >= 0 && l < k {
			members[l] = append(members[l], i)
		}
	}
	sampled := make([][]int, k)
	var all []int
	for c := 0; c < k; c++ {
		sampled[c] = subsample(members[c], cfg.ForecastSample)
		all = append(all, sampled[c]...)
	}
	series := make([][]float64, len(all))
	err := pipe.FromContext(ctx).ForEach(ctx, len(all), func(i int) {
		ant := ds.Indoor[all[i]]
		series[i] = ds.HourlyTotalsRow(ant, ds.Traffic.Row(ant.ID))
	})
	if err != nil {
		return nil, err
	}
	hours := ds.Cal.Hours()
	clusters := make([]forecast.ClusterSeries, k)
	pos := 0
	for c := 0; c < k; c++ {
		cs := forecast.ClusterSeries{Cluster: c, Members: len(members[c])}
		perAntenna := make([][]float64, len(sampled[c]))
		for i, idx := range sampled[c] {
			perAntenna[i] = series[pos]
			pos++
			cs.Antennas = append(cs.Antennas, forecast.AntennaSeries{Antenna: idx, Series: perAntenna[i]})
		}
		cs.Series = medianWindow(perAntenna, 0, hours, cfg.TemporalExactSort)
		clusters[c] = cs
	}
	return forecast.FitSet(clusters, forecast.Config{})
}

// classifyOutdoor computes Eq. 5 RSCA for the outdoor population and runs
// it through the surrogate forest as one pooled batch prediction.
func classifyOutdoor(ctx context.Context, ds *synth.Dataset, f *forest.Forest, k int) (labels []int, share []float64, err error) {
	if len(ds.Outdoor) == 0 {
		return nil, make([]float64, k), nil
	}
	ref, err := rca.NewOutdoorReference(ds.Traffic)
	if err != nil {
		return nil, nil, fmt.Errorf("outdoor reference: %w", err)
	}
	outRSCA, err := ref.RSCAOutdoor(ds.OutdoorTraffic)
	if err != nil {
		return nil, nil, fmt.Errorf("outdoor RSCA: %w", err)
	}
	labels, err = f.PredictAllContext(ctx, outRSCA)
	if err != nil {
		return nil, nil, err
	}
	share = make([]float64, k)
	for _, l := range labels {
		share[l]++
	}
	for i := range share {
		share[i] /= float64(len(labels))
	}
	return labels, share, nil
}
