package analysis

import (
	"math"
	"reflect"
	"testing"
)

// warmBase runs the cold pipeline once at a reduced scale; the warm tests
// share it (the pipeline is deterministic and the result is read-only).
var warmBaseCache *Result

func warmBase(t *testing.T) *Result {
	t.Helper()
	if warmBaseCache == nil {
		res, err := Run(Config{
			Seed:         7,
			Scale:        0.05,
			OutdoorCount: 150,
			ForestTrees:  15,
			SweepKMax:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		warmBaseCache = res
	}
	return warmBaseCache
}

func sameDense(t *testing.T, name string, a, b interface {
	Rows() int
	Cols() int
	Row(int) []float64
}) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				t.Fatalf("%s: bit mismatch at (%d,%d): %v vs %v", name, i, j, ra[j], rb[j])
			}
		}
	}
}

// TestWarmRefreshDriftZeroParity is the warm/cold parity fixture of the
// determinism contract: a warm refresh over bit-identical traffic with no
// dirty rows must reproduce the cold pipeline bit-for-bit — features,
// labels, surrogate forest and outdoor verdicts (the serve-side revision
// fingerprint is covered by serve's parity fixture).
func TestWarmRefreshDriftZeroParity(t *testing.T) {
	cold := warmBase(t)
	warm, st, err := WarmRefresh(cold, cold.Dataset.Traffic.Clone(), nil, WarmConfig{DriftThreshold: DefaultDriftThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift != 0 || st.Reassigned != 0 || st.Added != 0 || st.Escalated {
		t.Fatalf("drift-0 refresh reported movement: %+v", st)
	}
	sameDense(t, "RSCA", warm.RSCA, cold.RSCA)
	if !reflect.DeepEqual(warm.Labels, cold.Labels) {
		t.Fatal("labels diverged on identical data")
	}
	if !reflect.DeepEqual(warm.Surrogate, cold.Surrogate) {
		t.Fatal("surrogate forest diverged on identical data")
	}
	if warm.SurrogateAccuracy != cold.SurrogateAccuracy {
		t.Fatalf("surrogate accuracy %v vs %v", warm.SurrogateAccuracy, cold.SurrogateAccuracy)
	}
	if !reflect.DeepEqual(warm.OutdoorLabels, cold.OutdoorLabels) {
		t.Fatal("outdoor verdicts diverged on identical data")
	}
	if !reflect.DeepEqual(warm.OutdoorShare, cold.OutdoorShare) {
		t.Fatal("outdoor shares diverged on identical data")
	}
	if !reflect.DeepEqual(warm.Contingency, cold.Contingency) {
		t.Fatal("contingency diverged on identical data")
	}
	if warm.K != cold.K {
		t.Fatalf("K %d vs %d", warm.K, cold.K)
	}
}

// TestWarmRefreshMovesOnlyDirtyRows checks the warm path's locality: clean
// antennas keep their previous cluster even when other rows change.
func TestWarmRefreshMovesOnlyDirtyRows(t *testing.T) {
	cold := warmBase(t)
	traffic := cold.Dataset.Traffic.Clone()
	// Make one antenna's demand mix identical to antenna 0's, which sits
	// in a different cluster — its nearest centroid should move with it.
	a := -1
	for i, l := range cold.Labels {
		if l != cold.Labels[0] {
			a = i
			break
		}
	}
	if a < 0 {
		t.Fatal("could not find antennas in two clusters")
	}
	copy(traffic.Row(a), traffic.Row(0))

	warm, st, err := WarmRefresh(cold, traffic, []int{a}, WarmConfig{DriftThreshold: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Escalated {
		t.Fatal("threshold 1.1 must never escalate")
	}
	if st.Reassigned != 1 || warm.Labels[a] == cold.Labels[a] {
		t.Fatalf("expected exactly antenna %d to move (got %+v, label %d -> %d)",
			a, st, cold.Labels[a], warm.Labels[a])
	}
	for i := range warm.Labels {
		if i != a && warm.Labels[i] != cold.Labels[i] {
			t.Fatalf("clean antenna %d moved %d -> %d", i, cold.Labels[i], warm.Labels[i])
		}
	}
	if want := 1.0 / float64(len(cold.Labels)); st.Drift != want {
		t.Fatalf("drift %v, want %v", st.Drift, want)
	}
}

// TestWarmRefreshEscalatesPastThreshold checks the drift-escalation rule:
// past the threshold the warm pass re-runs the full Ward linkage.
func TestWarmRefreshEscalatesPastThreshold(t *testing.T) {
	cold := warmBase(t)
	traffic := cold.Dataset.Traffic.Clone()
	// Rewrite a third of the population with rows from other clusters so
	// plenty of antennas genuinely move.
	n := traffic.Rows()
	var dirty []int
	for i := 0; i < n/3; i++ {
		src := (i + n/2) % n
		if cold.Labels[src] == cold.Labels[i] {
			continue
		}
		copy(traffic.Row(i), traffic.Row(src))
		dirty = append(dirty, i)
	}
	warm, st, err := WarmRefresh(cold, traffic, dirty, WarmConfig{DriftThreshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Escalated {
		t.Fatalf("expected escalation, got %+v", st)
	}
	if warm.Linkage == nil {
		t.Fatal("escalated refresh must carry a fresh linkage")
	}
	if len(warm.Labels) != n {
		t.Fatalf("labels length %d, want %d", len(warm.Labels), n)
	}
	for i, l := range warm.Labels {
		if l < 0 || l >= warm.K {
			t.Fatalf("label %d out of range at %d", l, i)
		}
	}
	if warm.Surrogate == nil || warm.OutdoorLabels == nil {
		t.Fatal("escalated refresh must still retrain the model stages")
	}
}

// TestWarmRefreshRejectsBadInput covers the guard rails.
func TestWarmRefreshRejectsBadInput(t *testing.T) {
	cold := warmBase(t)
	if _, _, err := WarmRefresh(nil, cold.Dataset.Traffic, nil, WarmConfig{}); err == nil {
		t.Fatal("nil previous result must error")
	}
	if _, _, err := WarmRefresh(cold, nil, nil, WarmConfig{}); err == nil {
		t.Fatal("nil traffic must error")
	}
}
