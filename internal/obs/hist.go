package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Buckets hold observation counts for values ≤ the matching upper bound;
// values above the last bound land in an implicit +Inf bucket. Counts and
// the running sum use atomics, so Observe never takes a lock on the hot
// serving path.
type Histogram struct {
	name    string
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is the +Inf overflow bucket
	sumBits uint64  // float64 bits of the observation sum, CAS-updated
	total   int64
}

// DefaultLatencyBuckets are the millisecond upper bounds used by the
// serving path: sub-millisecond cache hits up to multi-second stragglers.
var DefaultLatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histograms is the process-wide histogram registry, mirroring the counter
// registry: one named histogram per metric, created on first use.
var (
	histMu sync.Mutex
	hists  = map[string]*Histogram{}
)

// GetHistogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select DefaultLatencyBuckets).
// Later calls ignore bounds, so concurrent callers always share one
// instance.
func GetHistogram(name string, bounds []float64) *Histogram {
	histMu.Lock()
	defer histMu.Unlock()
	if h, ok := hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{name: name, bounds: b, counts: make([]int64, len(b)+1)}
	hists[name] = h
	return h
}

// ObserveMS records one observation (in milliseconds) into the named
// histogram with the default latency buckets.
func ObserveMS(name string, ms float64) {
	GetHistogram(name, nil).Observe(ms)
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.total, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram for rendering: cumulative bucket counts, total count and sum.
type HistogramSnapshot struct {
	Name string
	// Bounds are the bucket upper bounds; Cumulative[i] counts
	// observations ≤ Bounds[i]. Count includes the +Inf overflow.
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: h.bounds,
		Count:  atomic.LoadInt64(&h.total),
		Sum:    math.Float64frombits(atomic.LoadUint64(&h.sumBits)),
	}
	s.Cumulative = make([]int64, len(h.bounds))
	var run int64
	for i := range h.bounds {
		run += atomic.LoadInt64(&h.counts[i])
		s.Cumulative[i] = run
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation within the containing bucket. Observations beyond
// the last bound report the last bound. Returns NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, c := range s.Cumulative {
		if float64(c) >= rank {
			lo, loCount := 0.0, int64(0)
			if i > 0 {
				lo, loCount = s.Bounds[i-1], s.Cumulative[i-1]
			}
			in := c - loCount
			if in == 0 {
				return s.Bounds[i]
			}
			frac := (rank - float64(loCount)) / float64(in)
			return lo + frac*(s.Bounds[i]-lo)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Histograms snapshots every registered histogram, sorted by name.
func Histograms() []HistogramSnapshot {
	histMu.Lock()
	all := make([]*Histogram, 0, len(hists))
	for _, h := range hists {
		all = append(all, h)
	}
	histMu.Unlock()
	out := make([]HistogramSnapshot, 0, len(all))
	for _, h := range all {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricsText renders every counter and histogram in the Prometheus text
// exposition format. Metric names are derived from registry names by
// replacing non-alphanumeric runes with underscores and prefixing "icn_".
func MetricsText() string {
	var b strings.Builder
	snap := Counters()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := metricName(n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, snap[n])
	}
	for _, h := range Histograms() {
		m := metricName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m, formatBound(bound), h.Cumulative[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	return b.String()
}

func metricName(name string) string {
	var b strings.Builder
	b.WriteString("icn_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
