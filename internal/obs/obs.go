// Package obs provides the lightweight observability layer of the staged
// pipeline engine: per-stage wall time, allocation and goroutine-count
// traces recorded by the internal/pipe scheduler and surfaced on the
// public analysis Result, plus process-wide named counters the worker
// pool and substrates increment. Everything is safe for concurrent use.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageTrace is one stage's execution record.
type StageTrace struct {
	// Name is the stage name as registered in the graph.
	Name string
	// Deps lists the stages this one waited on.
	Deps []string
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Waited is how long the stage sat ready-but-queued behind its
	// dependencies, measured from graph start for root stages.
	Waited time.Duration
	// AllocBytes is the process heap-allocation delta across the stage.
	// Concurrent stages allocate into the same process counters, so this
	// is an attribution estimate, not an exact per-stage figure.
	AllocBytes uint64
	// Goroutines is the process goroutine count sampled at stage end.
	Goroutines int
	// Err is the stage error message, empty on success.
	Err string
}

// Trace accumulates stage records for one pipeline run.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	stages []StageTrace
}

// NewTrace starts an empty trace clocked from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.start
}

// Record appends one stage record.
func (t *Trace) Record(st StageTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stages = append(t.stages, st)
}

// Stages returns a copy of the recorded stages in completion order.
func (t *Trace) Stages() []StageTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTrace, len(t.stages))
	copy(out, t.stages)
	return out
}

// Total returns the wall time from trace start to the last stage
// completion (zero when nothing was recorded).
func (t *Trace) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, s := range t.stages {
		if end := s.Waited + s.Wall; end > total {
			total = end
		}
	}
	return total
}

// String renders the trace as an aligned table, one row per stage in
// completion order, with the run total on the last line.
func (t *Trace) String() string {
	stages := t.Stages()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %6s  %s\n",
		"stage", "wall", "queued", "alloc", "gor", "deps")
	for _, s := range stages {
		status := strings.Join(s.Deps, ",")
		if s.Err != "" {
			status = "ERROR: " + s.Err
		}
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %6d  %s\n",
			s.Name,
			s.Wall.Round(time.Microsecond),
			s.Waited.Round(time.Microsecond),
			formatBytes(s.AllocBytes),
			s.Goroutines,
			status)
	}
	fmt.Fprintf(&b, "%-12s %10s\n", "TOTAL", t.Total().Round(time.Microsecond))
	return b.String()
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// MemAllocated samples the process cumulative heap allocation. Stage
// deltas of this value feed StageTrace.AllocBytes.
func MemAllocated() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// counters is the process-wide named counter registry.
var counters sync.Map // string -> *int64

// Add increments the named counter by delta.
func Add(name string, delta int64) {
	v, ok := counters.Load(name)
	if !ok {
		v, _ = counters.LoadOrStore(name, new(int64))
	}
	atomic.AddInt64(v.(*int64), delta)
}

// Counters snapshots every counter, sorted by name.
func Counters() map[string]int64 {
	out := map[string]int64{}
	counters.Range(func(k, v interface{}) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// CountersString renders the counter snapshot one "name value" per line,
// sorted by name.
func CountersString() string {
	snap := Counters()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap[n])
	}
	return b.String()
}
