package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := GetHistogram("test.hist.quantiles", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // ≤1 bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(5) // ≤10 bucket
	}
	h.Observe(50) // ≤100 bucket
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Cumulative[0]; got != 90 {
		t.Fatalf("≤1 bucket = %d", got)
	}
	if p50 := s.Quantile(0.5); p50 > 1 {
		t.Fatalf("p50 = %v, want within first bucket", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 1 || p99 > 10 {
		t.Fatalf("p99 = %v, want within (1,10]", p99)
	}
	if want := 90*0.5 + 9*5 + 50; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := GetHistogram("test.hist.overflow", []float64{1})
	h.Observe(99)
	s := h.Snapshot()
	if s.Count != 1 || s.Cumulative[0] != 0 {
		t.Fatalf("overflow observation miscounted: %+v", s)
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("overflow quantile should clamp to last bound, got %v", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := GetHistogram("test.hist.empty", []float64{1})
	if q := h.Snapshot().Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %v, want NaN", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := GetHistogram("test.hist.concurrent", []float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if math.Abs(s.Sum-8000*1.5) > 1e-6 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestGetHistogramSharesInstance(t *testing.T) {
	a := GetHistogram("test.hist.shared", []float64{1})
	b := GetHistogram("test.hist.shared", []float64{5, 6, 7})
	if a != b {
		t.Fatal("same name must return the same histogram")
	}
}

func TestMetricsTextRendersCountersAndHistograms(t *testing.T) {
	Add("test.metrics.counter", 3)
	ObserveMS("test.metrics.latency", 0.2)
	text := MetricsText()
	for _, want := range []string{
		"icn_test_metrics_counter 3",
		"# TYPE icn_test_metrics_latency histogram",
		`icn_test_metrics_latency_bucket{le="+Inf"} 1`,
		"icn_test_metrics_latency_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}
