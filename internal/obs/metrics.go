package obs

// This file is the module's metric catalog: the single registry of every
// counter and histogram name the system emits. The metricreg analyzer
// (internal/lint) statically checks the call sites against this table —
// every obs.Add / obs.ObserveMS name literal in the module must appear
// here exactly once, with the matching kind, and every non-dynamic entry
// must have at least one call site — so /metrics cannot silently grow
// unregistered series or carry dead registrations. At runtime the catalog
// seeds the registries (see init below), so every registered metric is
// present on /metrics from the first scrape, at zero, instead of appearing
// only after its first increment.

// MetricKind distinguishes the two registry shapes.
type MetricKind string

const (
	// KindCounter is a monotonically increasing named counter (obs.Add).
	KindCounter MetricKind = "counter"
	// KindHistogram is a fixed-bucket latency histogram (obs.ObserveMS /
	// obs.GetHistogram).
	KindHistogram MetricKind = "histogram"
)

// MetricDef is one catalog entry. Name is the registry name; the exported
// Prometheus name is derived from it ("icn_" prefix, non-alphanumerics to
// underscores — see metricName).
type MetricDef struct {
	// Name is the registry name passed to Add / ObserveMS.
	Name string
	// Kind selects the registry.
	Kind MetricKind
	// Help is a one-line description for documentation.
	Help string
	// Dynamic marks names composed at runtime from a closed enum (the
	// fault injector's per-site counters). Dynamic entries are exempt from
	// the metricreg "must have a static call site" check; their call sites
	// carry a //lint:allow metricreg annotation instead.
	Dynamic bool
	// Buckets overrides a histogram's bucket upper bounds (default:
	// DefaultLatencyBuckets). Because the registry is first-caller-wins and
	// init seeds every cataloged metric, non-latency histograms (queue
	// depths, ring occupancy shares) must declare their bounds here rather
	// than at a call site.
	Buckets []float64
}

// Catalog lists every metric the module emits. Keep it sorted by name
// within each group; metricreg rejects duplicates, unregistered call
// sites, kind mismatches, and non-dynamic entries with no call site.
var Catalog = []MetricDef{
	// Pipeline engine.
	{Name: "pipe.foreach", Kind: KindCounter, Help: "pool fan-out calls"},
	{Name: "pipe.items", Kind: KindCounter, Help: "work items distributed across the pool"},
	{Name: "pipe.stages", Kind: KindCounter, Help: "pipeline stages executed"},
	{Name: "pipe.tasks", Kind: KindCounter, Help: "tracked auxiliary goroutines spawned"},

	// Serving: ingest.
	{Name: "serve.ingest.batches", Kind: KindCounter, Help: "probe batches acked (202)"},
	{Name: "serve.ingest.folded", Kind: KindCounter, Help: "records folded into the aggregate by drain workers"},
	{Name: "serve.ingest.latency.ms", Kind: KindHistogram, Help: "ingest handler latency"},
	{Name: "serve.ingest.malformed", Kind: KindCounter, Help: "malformed probe streams rejected"},
	{Name: "serve.ingest.records", Kind: KindCounter, Help: "probe records acked"},
	{Name: "serve.ingest.rejected", Kind: KindCounter, Help: "batches rejected with 429 backpressure"},

	// Serving: classify.
	{Name: "serve.classify.antennas", Kind: KindCounter, Help: "traffic vectors classified"},
	{Name: "serve.classify.cache.hits", Kind: KindCounter, Help: "verdicts served from the revision LRU"},
	{Name: "serve.classify.cache.misses", Kind: KindCounter, Help: "verdicts that ran the model"},
	{Name: "serve.classify.latency.ms", Kind: KindHistogram, Help: "classify handler latency"},
	{Name: "serve.classify.requests", Kind: KindCounter, Help: "classify requests"},

	// Serving: forecast + capacity planning.
	{Name: "serve.forecast.cache.hits", Kind: KindCounter, Help: "forecasts served from the revision LRU"},
	{Name: "serve.forecast.cache.misses", Kind: KindCounter, Help: "forecasts computed from the model set"},
	{Name: "serve.forecast.latency.ms", Kind: KindHistogram, Help: "forecast handler latency"},
	{Name: "serve.forecast.requests", Kind: KindCounter, Help: "forecast requests"},
	{Name: "serve.plan.latency.ms", Kind: KindHistogram, Help: "plan handler latency"},
	{Name: "serve.plan.requests", Kind: KindCounter, Help: "capacity-planning scenario requests"},

	// Serving: model lifecycle.
	{Name: "serve.model.swaps", Kind: KindCounter, Help: "snapshot swaps published"},
	{Name: "serve.refresh.errors", Kind: KindCounter, Help: "refresh attempts that failed"},
	{Name: "serve.refresh.escalations", Kind: KindCounter, Help: "warm refreshes escalated to full re-linkage"},
	{Name: "serve.refresh.latency.ms", Kind: KindHistogram, Help: "end-to-end refresh duration"},
	{Name: "serve.refresh.reassigned", Kind: KindCounter, Help: "antennas reassigned across refreshes"},
	{Name: "serve.refresh.runs", Kind: KindCounter, Help: "completed refresh runs"},
	{Name: "serve.refresh.skipped", Kind: KindCounter, Help: "refresh ticks with no new aggregates"},

	// Sharded ingest + replicated serving (internal/shard).
	{Name: "shard.fanout.lag.ms", Kind: KindHistogram, Help: "snapshot fan-out lag behind the primary swap"},
	{Name: "shard.fanout.swaps", Kind: KindCounter, Help: "replica snapshot swaps fanned out after a refresh"},
	{Name: "shard.fold.records", Kind: KindCounter, Help: "records folded into per-shard sinks by drain workers"},
	{Name: "shard.ingest.batches", Kind: KindCounter, Help: "sharded probe batches acked (202) by the router"},
	{Name: "shard.ingest.latency.ms", Kind: KindHistogram, Help: "router ingest handler latency"},
	{Name: "shard.ingest.malformed", Kind: KindCounter, Help: "malformed probe streams rejected by the router"},
	{Name: "shard.ingest.records", Kind: KindCounter, Help: "sharded probe records acked by the router"},
	{Name: "shard.ingest.rejected", Kind: KindCounter, Help: "batches rejected with 429 router backpressure"},
	{Name: "shard.kills", Kind: KindCounter, Help: "shards killed: drained and removed from the ring"},
	{Name: "shard.queue.depth", Kind: KindHistogram, Help: "per-shard queue depth in batches, sampled at enqueue",
		Buckets: []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}},
	{Name: "shard.replica.kills", Kind: KindCounter, Help: "serve replicas killed and removed from routing"},
	{Name: "shard.ring.changes", Kind: KindCounter, Help: "ring membership changes (shard added or removed)"},
	{Name: "shard.ring.occupancy", Kind: KindHistogram, Help: "per-alive-shard share of the hash space, observed at each membership change",
		Buckets: []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 1}},
	{Name: "shard.router.failovers", Kind: KindCounter, Help: "proxied requests retried on another replica"},
	{Name: "shard.router.proxied", Kind: KindCounter, Help: "requests proxied to serve replicas"},

	// Fault injection: one errs/delays pair per fault.Site, with the name
	// composed at the injection site ("fault." + site + suffix).
	{Name: "fault.conn.read.delays", Kind: KindCounter, Help: "injected read delays", Dynamic: true},
	{Name: "fault.conn.read.errs", Kind: KindCounter, Help: "injected read errors", Dynamic: true},
	{Name: "fault.conn.write.delays", Kind: KindCounter, Help: "injected write delays", Dynamic: true},
	{Name: "fault.conn.write.errs", Kind: KindCounter, Help: "injected write errors", Dynamic: true},
	{Name: "fault.dial.delays", Kind: KindCounter, Help: "injected dial delays", Dynamic: true},
	{Name: "fault.dial.errs", Kind: KindCounter, Help: "injected dial errors", Dynamic: true},
	{Name: "fault.pipe.stage.delays", Kind: KindCounter, Help: "injected stage delays", Dynamic: true},
	{Name: "fault.pipe.stage.errs", Kind: KindCounter, Help: "injected stage errors", Dynamic: true},
	{Name: "fault.serve.classify.delays", Kind: KindCounter, Help: "injected classify delays", Dynamic: true},
	{Name: "fault.serve.classify.errs", Kind: KindCounter, Help: "injected classify errors", Dynamic: true},
	{Name: "fault.serve.fold.delays", Kind: KindCounter, Help: "injected drain-fold delays", Dynamic: true},
	{Name: "fault.serve.fold.errs", Kind: KindCounter, Help: "injected drain-fold errors", Dynamic: true},
	{Name: "fault.serve.ingest.delays", Kind: KindCounter, Help: "injected ingest delays", Dynamic: true},
	{Name: "fault.serve.ingest.errs", Kind: KindCounter, Help: "injected ingest errors", Dynamic: true},
	{Name: "fault.shard.fold.delays", Kind: KindCounter, Help: "injected shard-fold delays", Dynamic: true},
	{Name: "fault.shard.fold.errs", Kind: KindCounter, Help: "injected shard-fold errors", Dynamic: true},
}

// init seeds the registries from the catalog so every registered metric is
// emitted on /metrics (at zero) before its first observation.
func init() {
	for _, d := range Catalog {
		switch d.Kind {
		case KindCounter:
			Add(d.Name, 0)
		case KindHistogram:
			GetHistogram(d.Name, d.Buckets)
		}
	}
}
