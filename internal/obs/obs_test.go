package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordAndTotal(t *testing.T) {
	tr := NewTrace()
	tr.Record(StageTrace{Name: "first", Wall: 10 * time.Millisecond, Waited: 0})
	tr.Record(StageTrace{Name: "second", Wall: 5 * time.Millisecond, Waited: 12 * time.Millisecond})
	if got := len(tr.Stages()); got != 2 {
		t.Fatalf("%d stages", got)
	}
	if total := tr.Total(); total != 17*time.Millisecond {
		t.Fatalf("total %v, want 17ms", total)
	}
	s := tr.String()
	for _, want := range []string{"first", "second", "TOTAL"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, s)
		}
	}
}

func TestTraceErrorRendered(t *testing.T) {
	tr := NewTrace()
	tr.Record(StageTrace{Name: "bad", Err: "validation failed"})
	if !strings.Contains(tr.String(), "ERROR: validation failed") {
		t.Fatalf("error not rendered:\n%s", tr.String())
	}
}

func TestCountersConcurrent(t *testing.T) {
	const name = "obs.test.counter"
	base := Counters()[name]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Add(name, 1)
			}
		}()
	}
	wg.Wait()
	if got := Counters()[name] - base; got != 800 {
		t.Fatalf("counter delta %d, want 800", got)
	}
	if !strings.Contains(CountersString(), name) {
		t.Fatal("CountersString missing counter")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:       "512B",
		2 << 10:   "2.0KiB",
		3 << 20:   "3.0MiB",
		1<<30 + 1: "1.0GiB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Fatalf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
