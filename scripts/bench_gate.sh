#!/usr/bin/env bash
# bench_gate.sh — benchmark-regression gate.
#
# Reruns the pipeline at the committed baseline's shape and fails (exit 1,
# with a per-stage table) when any stage — or the total — slows beyond the
# tolerance. The candidate takes the per-stage best over BENCH_GATE_RUNS
# reruns, and stages under the floor are held to the floor's limit, so
# scheduler noise on shared runners doesn't trip the gate.
#
# Knobs (environment):
#   BENCH_GATE_SEED       generator seed              (default 1)
#   BENCH_GATE_SCALE      antenna-population scale    (default 0.25)
#   BENCH_GATE_TREES      surrogate forest size       (default 100)
#   BENCH_GATE_TOLERANCE  allowed fractional slowdown (default 0.25 = +25%)
#   BENCH_GATE_FLOOR_MS   per-stage noise floor in ms (default 120)
#   BENCH_GATE_RUNS       reruns, best wall gated     (default 2)
#   BENCH_GATE_BASELINE   baseline JSON               (default BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${BENCH_GATE_SEED:-1}"
SCALE="${BENCH_GATE_SCALE:-0.25}"
TREES="${BENCH_GATE_TREES:-100}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-0.25}"
FLOOR_MS="${BENCH_GATE_FLOOR_MS:-120}"
RUNS="${BENCH_GATE_RUNS:-2}"
BASELINE="${BENCH_GATE_BASELINE:-BENCH_baseline.json}"

exec go run ./cmd/icnbench \
  -seed "$SEED" -scale "$SCALE" -trees "$TREES" \
  -gate "$BASELINE" \
  -gatetolerance "$TOLERANCE" \
  -gatefloor "$FLOOR_MS" \
  -gateruns "$RUNS"
