#!/usr/bin/env bash
# bench_gate.sh — benchmark-regression gate.
#
# Reruns the pipeline at the committed baseline's shape and fails (exit 1,
# with a per-stage table) when any stage — or the total — slows beyond the
# tolerance. The candidate takes the per-stage best over BENCH_GATE_RUNS
# reruns, and stages under the floor are held to the floor's limit, so
# scheduler noise on shared runners doesn't trip the gate.
#
# A second leg reruns the serving benchmark (classify p50/p99, one warm
# refresh cycle, forecast training, and a /v1/forecast load with a mid-run
# swap and bit-parity audit) and gates its latency rows against the
# committed BENCH_serve.json through the same per-stage comparison
# (-gatecompare). The candidate's row set is schema-validated: exactly
# classify_p50, classify_p99, refresh_warm, forecast_train, forecast_p50,
# forecast_p99 — a leg that stops emitting a gated row, or grows a row
# nothing ratchets, fails here instead of drifting.
#
# A third leg reruns the sharded nationwide benchmark at scale 1.0 (4
# shards, 2 replicas, 2M probe sessions with mid-run kills) and gates its
# shard_ingest / shard_classify_p50 / shard_classify_p99 / shard_refresh
# rows against the committed BENCH_shard.json. This leg trains the full
# population and takes minutes; set BENCH_GATE_SHARD_BASELINE="" to skip.
#
# Knobs (environment):
#   BENCH_GATE_SEED           generator seed              (default 1)
#   BENCH_GATE_SCALE          antenna-population scale    (default 0.25)
#   BENCH_GATE_TREES          surrogate forest size       (default 100)
#   BENCH_GATE_TOLERANCE      allowed fractional slowdown (default 0.25 = +25%)
#   BENCH_GATE_FLOOR_MS       per-stage noise floor in ms (default 120)
#   BENCH_GATE_RUNS           reruns, best wall gated     (default 2)
#   BENCH_GATE_MAX            absolute per-stage ceilings as stage=ms pairs
#                             (default "temporal=300,selection=130" — the
#                             rebuilt hot stages' budget at the default
#                             scale-0.25 shape; set empty to disable, and
#                             override when gating a non-default shape)
#   BENCH_GATE_BASELINE       baseline JSON               (default BENCH_baseline.json)
#   BENCH_GATE_SERVE_BASELINE serving baseline JSON       (default BENCH_serve.json;
#                             set empty to skip the serving leg)
#   BENCH_GATE_SHARD_BASELINE sharded baseline JSON       (default BENCH_shard.json;
#                             set empty to skip the sharded leg)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${BENCH_GATE_SEED:-1}"
SCALE="${BENCH_GATE_SCALE:-0.25}"
TREES="${BENCH_GATE_TREES:-100}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-0.25}"
FLOOR_MS="${BENCH_GATE_FLOOR_MS:-120}"
RUNS="${BENCH_GATE_RUNS:-2}"
GATE_MAX="${BENCH_GATE_MAX-temporal=300,selection=130}"
BASELINE="${BENCH_GATE_BASELINE:-BENCH_baseline.json}"
SERVE_BASELINE="${BENCH_GATE_SERVE_BASELINE-BENCH_serve.json}"
SHARD_BASELINE="${BENCH_GATE_SHARD_BASELINE-BENCH_shard.json}"

# Pinned gate-row schemas for the serving and sharded records.
SERVE_ROWS="classify_p50,classify_p99,refresh_warm,forecast_train,forecast_p50,forecast_p99"
SHARD_ROWS="shard_ingest,shard_classify_p50,shard_classify_p99,shard_refresh"

go run ./cmd/icnbench \
  -seed "$SEED" -scale "$SCALE" -trees "$TREES" \
  -gate "$BASELINE" \
  -gatetolerance "$TOLERANCE" \
  -gatefloor "$FLOOR_MS" \
  -gateruns "$RUNS" \
  -gatemax "$GATE_MAX"

if [[ -n "$SERVE_BASELINE" && -f "$SERVE_BASELINE" ]]; then
  echo "bench gate: serving leg (baseline $SERVE_BASELINE)"
  serve_json="$(mktemp)"
  trap 'rm -f "$serve_json"' EXIT
  # The candidate must be measured at the committed baseline's shape.
  go run ./cmd/icnbench -serve -scale 0.1 -trees 25 -servejson "$serve_json"
  go run ./cmd/icnbench \
    -gate "$SERVE_BASELINE" -gatecompare "$serve_json" \
    -gatetolerance "$TOLERANCE" \
    -gatefloor "$FLOOR_MS" \
    -gateexpect "$SERVE_ROWS"
fi

if [[ -n "$SHARD_BASELINE" && -f "$SHARD_BASELINE" ]]; then
  echo "bench gate: sharded leg (baseline $SHARD_BASELINE, scale 1.0 — this takes minutes)"
  shard_json="$(mktemp)"
  trap 'rm -f "${serve_json:-}" "$shard_json"' EXIT
  # Same shape as `make shard-bench`, which refreshes the baseline.
  go run ./cmd/icnbench -shards 4 -replicas 2 -shardjson "$shard_json"
  go run ./cmd/icnbench \
    -gate "$SHARD_BASELINE" -gatecompare "$shard_json" \
    -gatetolerance "$TOLERANCE" \
    -gatefloor "$FLOOR_MS" \
    -gateexpect "$SHARD_ROWS"
fi
