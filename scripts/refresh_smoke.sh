#!/usr/bin/env bash
# refresh_smoke.sh — end-to-end smoke of the continuous-refresh loop.
#
# Builds icnserve, starts it with a 1s refresh interval at a tiny training
# scale, then closes the loop the way an operator would see it: read the
# initial model revision from /v1/model, ingest a probe batch, wait for
# the background refresher to fold it, retrain warm, and swap — observed
# as the served revision advancing — then assert the swap is consistent
# (two classifies under one revision return identical verdicts), that the
# refresh telemetry and icn_serve_refresh_* metrics moved, and that a
# SIGTERM drain stays clean with the refresher attached. Run via
# `make refresh-smoke`.
#
# Set SMOKE_LOG_DIR to keep the server log and response bodies after the
# run (CI uploads them as artifacts on failure); by default everything
# lives and dies in a temp dir.
set -euo pipefail

ADDR="${ICNSERVE_ADDR:-127.0.0.1:9474}"
SEED=1
SCALE=0.05
TREES=10

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
    mkdir -p "$SMOKE_LOG_DIR"
    cp -f "$tmp"/*.log "$tmp"/*.out "$SMOKE_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "refresh-smoke: building icnserve"
go build -o "$tmp/icnserve" ./cmd/icnserve

echo "refresh-smoke: writing sample bodies"
"$tmp/icnserve" -sample "$tmp" -seed "$SEED" -scale "$SCALE" -trees "$TREES"

echo "refresh-smoke: starting icnserve on $ADDR (refresh every 1s)"
"$tmp/icnserve" -addr "$ADDR" -seed "$SEED" -scale "$SCALE" -trees "$TREES" \
  -refresh-interval 1s >"$tmp/server.log" 2>&1 &
server_pid=$!

for i in $(seq 1 120); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "refresh-smoke: FAIL — server exited before becoming healthy" >&2
    cat "$tmp/server.log" >&2
    exit 1
  fi
  sleep 0.5
done
curl -fsS "http://$ADDR/healthz" >/dev/null || {
  echo "refresh-smoke: FAIL — /healthz never came up" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "refresh-smoke: healthy"

# Revisions are uint64 fingerprints; jq parses them as doubles and rounds,
# so distinct revisions can compare equal. Extract them textually.
revision_of() { grep -o "\"$2\":[0-9]*" "$1" | head -1 | cut -d: -f2; }

curl -fsS "http://$ADDR/v1/model" >"$tmp/model0.out"
rev0=$(revision_of "$tmp/model0.out" revision)
jq -e '.refresh' "$tmp/model0.out" >/dev/null || {
  echo "refresh-smoke: FAIL — /v1/model reports no refresh telemetry" >&2
  exit 1
}
echo "refresh-smoke: base revision $rev0"

status=$(curl -s -o "$tmp/ingest.out" -w '%{http_code}' \
  -X POST --data-binary "@$tmp/ingest.bin" "http://$ADDR/v1/ingest")
[[ "$status" == "202" ]] || {
  echo "refresh-smoke: FAIL — ingest answered $status: $(cat "$tmp/ingest.out")" >&2
  exit 1
}
echo "refresh-smoke: ingest accepted $(jq -r '.accepted' "$tmp/ingest.out") records"

# The background refresher must fold the batch, retrain warm, and swap —
# observed as the served revision advancing.
rev1="$rev0"
for i in $(seq 1 60); do
  curl -fsS "http://$ADDR/v1/model" >"$tmp/model1.out" || true
  rev1=$(revision_of "$tmp/model1.out" revision)
  if [[ -n "$rev1" && "$rev1" != "$rev0" ]]; then
    break
  fi
  sleep 0.5
done
[[ -n "$rev1" && "$rev1" != "$rev0" ]] || {
  echo "refresh-smoke: FAIL — revision never advanced after ingest" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "refresh-smoke: refresh swapped in revision $rev1"

# The ingest batch may fold across more than one tick, each minting a
# revision; wait until the refresher converges (revision stable across
# three consecutive polls spanning the tick interval).
stable=0
for i in $(seq 1 60); do
  sleep 1
  curl -fsS "http://$ADDR/v1/model" >"$tmp/model1.out" || true
  next=$(revision_of "$tmp/model1.out" revision)
  if [[ "$next" == "$rev1" ]]; then
    stable=$((stable + 1))
    [[ "$stable" -ge 3 ]] && break
  else
    stable=0
    rev1="$next"
  fi
done
[[ "$stable" -ge 3 ]] || {
  echo "refresh-smoke: FAIL — revision never settled after the ingest drained" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "refresh-smoke: refresher converged on revision $rev1"

jq -e '.refresh.runs >= 1 and .refresh.swaps >= 1' "$tmp/model1.out" >/dev/null || {
  echo "refresh-smoke: FAIL — refresh telemetry did not count the swap: $(jq -c '.refresh' "$tmp/model1.out")" >&2
  exit 1
}

# Revision consistency from the client side: with no further ingest the
# refresher converges (skips), so two classifies must agree on both the
# echoed revision and every verdict.
for n in 1 2; do
  status=$(curl -s -o "$tmp/classify$n.out" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    --data-binary "@$tmp/classify.json" "http://$ADDR/v1/classify")
  [[ "$status" == "200" ]] || {
    echo "refresh-smoke: FAIL — classify $n answered $status: $(cat "$tmp/classify$n.out")" >&2
    exit 1
  }
done
crev1=$(revision_of "$tmp/classify1.out" model_revision)
crev2=$(revision_of "$tmp/classify2.out" model_revision)
[[ "$crev1" == "$crev2" && "$crev1" == "$rev1" ]] || {
  echo "refresh-smoke: FAIL — classify revisions diverged ($crev1, $crev2; model says $rev1)" >&2
  exit 1
}
# Compare the verdicts only — the `cached` flag legitimately differs
# between the post-swap cache miss and the repeat hit.
diff <(jq -S '[.results[] | {id, cluster}]' "$tmp/classify1.out") \
     <(jq -S '[.results[] | {id, cluster}]' "$tmp/classify2.out") >/dev/null || {
  echo "refresh-smoke: FAIL — same revision served different verdicts" >&2
  exit 1
}
echo "refresh-smoke: classify verdicts consistent under revision $crev1"

curl -fsS "http://$ADDR/metrics" >"$tmp/metrics.out"
grep -q '^icn_serve_refresh_runs ' "$tmp/metrics.out" || {
  echo "refresh-smoke: FAIL — /metrics missing icn_serve_refresh_runs" >&2
  exit 1
}
grep -q '^icn_serve_refresh_latency_ms_bucket' "$tmp/metrics.out" || {
  echo "refresh-smoke: FAIL — /metrics missing refresh latency histogram" >&2
  exit 1
}
grep -q '^icn_serve_model_swaps ' "$tmp/metrics.out" || {
  echo "refresh-smoke: FAIL — /metrics missing icn_serve_model_swaps" >&2
  exit 1
}
echo "refresh-smoke: refresh metrics look sane"

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "refresh-smoke: graceful SIGTERM shutdown OK (refresher drained)"
echo "refresh-smoke: PASS"
