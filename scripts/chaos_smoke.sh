#!/usr/bin/env bash
# chaos_smoke.sh — seeded fault-injection soak of the full online stack.
#
# Builds icnbench and runs the -chaos soak twice with the same seed: each
# run stands up a live server plus a TCP collector and drives N seeded
# fault schedules (dial refusals, mid-stream resets, ingest/fold/classify
# latency, queue pressure, racing model swaps) while asserting the three
# soak invariants — acked-batch survival through shutdown, served-cluster
# parity with the offline labels of the echoed model revision, and
# degradation (429/503/retries) instead of loss or deadlock. The two runs
# must agree on the printed fault-plan digest: the decision streams are a
# pure function of the seed. Run via `make chaos-smoke`.
#
# Set SMOKE_LOG_DIR to keep the soak transcripts and JSON records after
# the run (CI uploads them as artifacts on failure); by default everything
# lives and dies in a temp dir.
set -euo pipefail

SEED="${CHAOS_SEED:-7}"
SCHEDULES="${CHAOS_SCHEDULES:-2}"
SCALE=0.05
TREES=15

tmp="$(mktemp -d)"
cleanup() {
  if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
    mkdir -p "$SMOKE_LOG_DIR"
    cp -f "$tmp"/run_*.txt "$tmp"/chaos_*.json "$SMOKE_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "chaos-smoke: building icnbench"
go build -o "$tmp/icnbench" ./cmd/icnbench

run() {
  "$tmp/icnbench" -chaos -seed "$SEED" -chaosschedules "$SCHEDULES" \
    -scale "$SCALE" -trees "$TREES" -chaosjson "$tmp/chaos_$1.json" \
    | tee "$tmp/run_$1.txt"
}

echo "chaos-smoke: soak run 1 (seed=$SEED schedules=$SCHEDULES)"
run 1
echo "chaos-smoke: soak run 2 (same seed — plan must reproduce)"
run 2

grep -q 'chaos PASS' "$tmp/run_1.txt" && grep -q 'chaos PASS' "$tmp/run_2.txt" || {
  echo "chaos-smoke: FAIL — a soak run did not pass its invariants" >&2
  exit 1
}

digest1=$(sed -n 's/.*chaos plan digest \(0x[0-9a-f]*\).*/\1/p' "$tmp/run_1.txt")
digest2=$(sed -n 's/.*chaos plan digest \(0x[0-9a-f]*\).*/\1/p' "$tmp/run_2.txt")
[[ -n "$digest1" && "$digest1" == "$digest2" ]] || {
  echo "chaos-smoke: FAIL — plan digest not reproducible ($digest1 vs $digest2)" >&2
  exit 1
}
echo "chaos-smoke: plan digest $digest1 reproduced across runs"

# Per-schedule digests in the JSON records must agree as well.
for f in 1 2; do
  [[ -s "$tmp/chaos_$f.json" ]] || { echo "chaos-smoke: FAIL — missing chaos record $f" >&2; exit 1; }
done
if command -v jq >/dev/null 2>&1; then
  d1=$(jq -r '[.schedules[].digest] | join(",")' "$tmp/chaos_1.json")
  d2=$(jq -r '[.schedules[].digest] | join(",")' "$tmp/chaos_2.json")
  [[ "$d1" == "$d2" ]] || {
    echo "chaos-smoke: FAIL — schedule digests diverged ($d1 vs $d2)" >&2
    exit 1
  }
  echo "chaos-smoke: $SCHEDULES schedule digests reproduced"
fi
echo "chaos-smoke: PASS"
