#!/usr/bin/env bash
# forecast_smoke.sh — end-to-end smoke of the forecasting & planning surface.
#
# Builds icnserve, starts it with a 1s refresh interval at a tiny training
# scale, and drives the capacity-planning loop the way an operator would:
# query /v1/forecast and check the echoed revision matches /v1/model, repeat
# the query and require a cache hit with bit-identical values, score a
# what-if scenario through /v1/plan and audit its population accounting,
# then ingest a probe batch, wait for the background refresher to retrain
# and swap, and require the next forecast to carry the fresh revision —
# forecast/model revision consistency across a live swap. Finishes with
# validation-error checks, a /metrics scrape, and a SIGTERM drain. Run via
# `make forecast-smoke`.
#
# Set SMOKE_LOG_DIR to keep the server log and response bodies after the
# run (CI uploads them as artifacts on failure); by default everything
# lives and dies in a temp dir.
set -euo pipefail

ADDR="${ICNSERVE_ADDR:-127.0.0.1:9475}"
SEED=1
SCALE=0.05
TREES=10

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
    mkdir -p "$SMOKE_LOG_DIR"
    cp -f "$tmp"/*.log "$tmp"/*.out "$SMOKE_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "forecast-smoke: building icnserve"
go build -o "$tmp/icnserve" ./cmd/icnserve

echo "forecast-smoke: writing sample bodies"
"$tmp/icnserve" -sample "$tmp" -seed "$SEED" -scale "$SCALE" -trees "$TREES"

echo "forecast-smoke: starting icnserve on $ADDR (refresh every 1s)"
"$tmp/icnserve" -addr "$ADDR" -seed "$SEED" -scale "$SCALE" -trees "$TREES" \
  -refresh-interval 1s >"$tmp/server.log" 2>&1 &
server_pid=$!

for i in $(seq 1 120); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "forecast-smoke: FAIL — server exited before becoming healthy" >&2
    cat "$tmp/server.log" >&2
    exit 1
  fi
  sleep 0.5
done
curl -fsS "http://$ADDR/healthz" >/dev/null || {
  echo "forecast-smoke: FAIL — /healthz never came up" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "forecast-smoke: healthy"

# Revisions are uint64 fingerprints; jq parses them as doubles and rounds,
# so distinct revisions can compare equal. Extract them textually.
revision_of() { grep -o "\"$2\":[0-9]*" "$1" | head -1 | cut -d: -f2; }

post_json() { # out-file body path -> status
  curl -s -o "$1" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' \
    --data "$2" "http://$ADDR$3"
}

curl -fsS "http://$ADDR/v1/model" >"$tmp/model0.out"
rev0=$(revision_of "$tmp/model0.out" revision)
jq -e '.forecast_clusters >= 1' "$tmp/model0.out" >/dev/null || {
  echo "forecast-smoke: FAIL — /v1/model reports no forecast models: $(cat "$tmp/model0.out")" >&2
  exit 1
}
echo "forecast-smoke: base revision $rev0, $(jq -r '.forecast_clusters' "$tmp/model0.out") forecast clusters"

# Forecast revision consistency: the echoed model_revision must be the
# served /v1/model revision, with a full-length horizon payload.
status=$(post_json "$tmp/forecast1.out" '{"cluster":0,"horizon":24}' /v1/forecast)
[[ "$status" == "200" ]] || {
  echo "forecast-smoke: FAIL — forecast answered $status: $(cat "$tmp/forecast1.out")" >&2
  exit 1
}
frev=$(revision_of "$tmp/forecast1.out" model_revision)
[[ "$frev" == "$rev0" ]] || {
  echo "forecast-smoke: FAIL — forecast revision $frev != model revision $rev0" >&2
  exit 1
}
jq -e '(.forecast | length) == 24 and .busy_hour >= 0 and .busy_hour < 168' "$tmp/forecast1.out" >/dev/null || {
  echo "forecast-smoke: FAIL — malformed forecast payload: $(cat "$tmp/forecast1.out")" >&2
  exit 1
}

# The repeat query must hit the revision LRU with identical values.
status=$(post_json "$tmp/forecast2.out" '{"cluster":0,"horizon":24}' /v1/forecast)
[[ "$status" == "200" ]] || {
  echo "forecast-smoke: FAIL — repeat forecast answered $status" >&2
  exit 1
}
jq -e '.cached == true' "$tmp/forecast2.out" >/dev/null || {
  echo "forecast-smoke: FAIL — repeat forecast was not served from the cache" >&2
  exit 1
}
diff <(jq -S '{model_revision, cluster, horizon, busy_hour, forecast}' "$tmp/forecast1.out") \
     <(jq -S '{model_revision, cluster, horizon, busy_hour, forecast}' "$tmp/forecast2.out") >/dev/null || {
  echo "forecast-smoke: FAIL — cached forecast diverged from the computed one" >&2
  exit 1
}
echo "forecast-smoke: forecast served and cached consistently under revision $frev"

# Planning round-trip: densify cluster 0 by two antennas and check the
# population accounting and the revision echo.
status=$(post_json "$tmp/plan.out" '{"horizon":24,"actions":[{"op":"add_antennas","cluster":0,"count":2}]}' /v1/plan)
[[ "$status" == "200" ]] || {
  echo "forecast-smoke: FAIL — plan answered $status: $(cat "$tmp/plan.out")" >&2
  exit 1
}
prev=$(revision_of "$tmp/plan.out" model_revision)
[[ "$prev" == "$rev0" ]] || {
  echo "forecast-smoke: FAIL — plan revision $prev != model revision $rev0" >&2
  exit 1
}
jq -e '.plan.clusters[0] | .antennas_after == .antennas_before + 2' "$tmp/plan.out" >/dev/null || {
  echo "forecast-smoke: FAIL — plan did not add the antennas: $(jq -c '.plan.clusters[0]' "$tmp/plan.out")" >&2
  exit 1
}
jq -e '.plan.total_planned_mb > .plan.total_baseline_mb' "$tmp/plan.out" >/dev/null || {
  echo "forecast-smoke: FAIL — densifying a cluster did not raise the planned busy-hour total" >&2
  exit 1
}
echo "forecast-smoke: plan scored (+2 antennas in cluster 0) under revision $prev"

# Ingest a probe batch; the background refresher folds it, retrains warm
# (forecasters included), and swaps — observed as the revision advancing.
status=$(curl -s -o "$tmp/ingest.out" -w '%{http_code}' \
  -X POST --data-binary "@$tmp/ingest.bin" "http://$ADDR/v1/ingest")
[[ "$status" == "202" ]] || {
  echo "forecast-smoke: FAIL — ingest answered $status: $(cat "$tmp/ingest.out")" >&2
  exit 1
}
rev1="$rev0"
for i in $(seq 1 60); do
  curl -fsS "http://$ADDR/v1/model" >"$tmp/model1.out" || true
  rev1=$(revision_of "$tmp/model1.out" revision)
  if [[ -n "$rev1" && "$rev1" != "$rev0" ]]; then
    break
  fi
  sleep 0.5
done
[[ -n "$rev1" && "$rev1" != "$rev0" ]] || {
  echo "forecast-smoke: FAIL — revision never advanced after ingest" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
# The batch may fold across several ticks; wait for convergence (revision
# stable across three consecutive polls spanning the tick interval).
stable=0
for i in $(seq 1 60); do
  sleep 1
  curl -fsS "http://$ADDR/v1/model" >"$tmp/model1.out" || true
  next=$(revision_of "$tmp/model1.out" revision)
  if [[ "$next" == "$rev1" ]]; then
    stable=$((stable + 1))
    [[ "$stable" -ge 3 ]] && break
  else
    stable=0
    rev1="$next"
  fi
done
[[ "$stable" -ge 3 ]] || {
  echo "forecast-smoke: FAIL — revision never settled after the ingest drained" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "forecast-smoke: refresh swapped in revision $rev1"

# The swap must purge the forecast cache: the next query carries the fresh
# revision, recomputed (not replayed from the old revision's LRU).
status=$(post_json "$tmp/forecast3.out" '{"cluster":0,"horizon":24}' /v1/forecast)
[[ "$status" == "200" ]] || {
  echo "forecast-smoke: FAIL — post-swap forecast answered $status" >&2
  exit 1
}
frev3=$(revision_of "$tmp/forecast3.out" model_revision)
[[ "$frev3" == "$rev1" ]] || {
  echo "forecast-smoke: FAIL — post-swap forecast revision $frev3 != refreshed $rev1" >&2
  exit 1
}
jq -e '.cached != true' "$tmp/forecast3.out" >/dev/null || {
  echo "forecast-smoke: FAIL — post-swap forecast replayed the purged cache" >&2
  exit 1
}
echo "forecast-smoke: post-swap forecast recomputed under revision $frev3"

# Validation surface: out-of-range cluster and double selectors are 400s.
status=$(post_json "$tmp/bad1.out" '{"cluster":100000}' /v1/forecast)
[[ "$status" == "400" ]] || {
  echo "forecast-smoke: FAIL — out-of-range cluster answered $status, want 400" >&2
  exit 1
}
status=$(post_json "$tmp/bad2.out" '{"cluster":0,"antenna":1}' /v1/forecast)
[[ "$status" == "400" ]] || {
  echo "forecast-smoke: FAIL — double selector answered $status, want 400" >&2
  exit 1
}
status=$(post_json "$tmp/bad3.out" '{"actions":[{"op":"warp","cluster":0}]}' /v1/plan)
[[ "$status" == "400" ]] || {
  echo "forecast-smoke: FAIL — unknown plan op answered $status, want 400" >&2
  exit 1
}
echo "forecast-smoke: validation errors answered 400"

curl -fsS "http://$ADDR/metrics" >"$tmp/metrics.out"
for metric in icn_serve_forecast_requests icn_serve_plan_requests; do
  grep -q "^$metric " "$tmp/metrics.out" || {
    echo "forecast-smoke: FAIL — /metrics missing $metric" >&2
    exit 1
  }
done
grep -q '^icn_serve_forecast_latency_ms_bucket' "$tmp/metrics.out" || {
  echo "forecast-smoke: FAIL — /metrics missing forecast latency histogram" >&2
  exit 1
}
echo "forecast-smoke: forecast metrics look sane"

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "forecast-smoke: graceful SIGTERM shutdown OK"
echo "forecast-smoke: PASS"
