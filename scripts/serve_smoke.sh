#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the online serving path.
#
# Builds icnserve, writes matched sample request bodies, starts the
# service at a tiny training scale, then walks the public API the way an
# operator would: ingest a probe batch, classify outdoor antennas, read
# /v1/stats and /metrics, and stop the server with SIGTERM, asserting a
# clean drained exit. Run via `make serve-smoke`.
#
# Set SMOKE_LOG_DIR to keep the server log and response bodies after the
# run (CI uploads them as artifacts on failure); by default everything
# lives and dies in a temp dir.
set -euo pipefail

ADDR="${ICNSERVE_ADDR:-127.0.0.1:9473}"
SEED=1
SCALE=0.05
TREES=10

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
    mkdir -p "$SMOKE_LOG_DIR"
    cp -f "$tmp"/*.log "$tmp"/*.out "$SMOKE_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building icnserve"
go build -o "$tmp/icnserve" ./cmd/icnserve

echo "serve-smoke: writing sample bodies"
"$tmp/icnserve" -sample "$tmp" -seed "$SEED" -scale "$SCALE" -trees "$TREES"

echo "serve-smoke: starting icnserve on $ADDR"
"$tmp/icnserve" -addr "$ADDR" -seed "$SEED" -scale "$SCALE" -trees "$TREES" \
  >"$tmp/server.log" 2>&1 &
server_pid=$!

for i in $(seq 1 120); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "serve-smoke: FAIL — server exited before becoming healthy" >&2
    cat "$tmp/server.log" >&2
    exit 1
  fi
  sleep 0.5
done
curl -fsS "http://$ADDR/healthz" >/dev/null || {
  echo "serve-smoke: FAIL — /healthz never came up" >&2
  cat "$tmp/server.log" >&2
  exit 1
}
echo "serve-smoke: healthy"

status=$(curl -s -o "$tmp/ingest.out" -w '%{http_code}' \
  -X POST --data-binary "@$tmp/ingest.bin" "http://$ADDR/v1/ingest")
[[ "$status" == "202" ]] || {
  echo "serve-smoke: FAIL — ingest answered $status: $(cat "$tmp/ingest.out")" >&2
  exit 1
}
accepted=$(jq -r '.accepted' "$tmp/ingest.out")
echo "serve-smoke: ingest accepted $accepted records"
[[ "$accepted" -gt 0 ]]

status=$(curl -s -o "$tmp/classify.out" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/classify.json" "http://$ADDR/v1/classify")
[[ "$status" == "200" ]] || {
  echo "serve-smoke: FAIL — classify answered $status: $(cat "$tmp/classify.out")" >&2
  exit 1
}
verdicts=$(jq '.results | length' "$tmp/classify.out")
echo "serve-smoke: classify returned $verdicts verdicts (revision $(jq '.model_revision' "$tmp/classify.out"))"
[[ "$verdicts" -gt 0 ]]

# A second identical classify must be served from the LRU (Revision > 0
# in the sample bodies enables caching).
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary "@$tmp/classify.json" "http://$ADDR/v1/classify" >"$tmp/classify2.out"
cached=$(jq '.cache_hits' "$tmp/classify2.out")
[[ "$cached" -eq "$verdicts" ]] || {
  echo "serve-smoke: FAIL — repeat classify hit cache $cached/$verdicts times" >&2
  exit 1
}
echo "serve-smoke: repeat classify fully cached"

curl -fsS "http://$ADDR/v1/stats" | jq -e '.ingest_records > 0' >/dev/null || {
  echo "serve-smoke: FAIL — /v1/stats shows no folded ingest records" >&2
  exit 1
}
curl -fsS "http://$ADDR/metrics" >"$tmp/metrics.out"
grep -q '^icn_serve_ingest_records ' "$tmp/metrics.out" || {
  echo "serve-smoke: FAIL — /metrics missing icn_serve_ingest_records" >&2
  exit 1
}
grep -q '^icn_serve_classify_latency_ms_bucket' "$tmp/metrics.out" || {
  echo "serve-smoke: FAIL — /metrics missing classify latency histogram" >&2
  exit 1
}
echo "serve-smoke: stats and metrics look sane"

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serve-smoke: graceful SIGTERM shutdown OK"
echo "serve-smoke: PASS"
