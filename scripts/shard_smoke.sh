#!/usr/bin/env bash
# shard_smoke.sh — end-to-end smoke of the sharded nationwide tier.
#
# Builds icnbench and runs the -shards leg twice at a small scale with the
# same seed. Each run stands up N ingest shards on a consistent-hash ring
# behind two serve replicas, drives concurrent probe batches through the
# router while one shard and one replica are killed mid-soak, fans one
# refreshed revision out, and audits the two distributed invariants
# (acked == folded after the drain; served↔offline parity per echoed
# revision). The two runs must agree on the ring digest — placement is a
# pure function of (shards, vnodes, seed) — and on the acked/folded record
# counts. Run via `make shard-smoke`.
#
# Set SMOKE_LOG_DIR to keep the transcripts and JSON records after the run
# (CI uploads them as artifacts on failure).
set -euo pipefail

SEED="${SHARD_SEED:-7}"
SHARDS="${SHARD_SHARDS:-3}"
REPLICAS="${SHARD_REPLICAS:-2}"
SCALE=0.05
TREES=15

tmp="$(mktemp -d)"
cleanup() {
  if [[ -n "${SMOKE_LOG_DIR:-}" ]]; then
    mkdir -p "$SMOKE_LOG_DIR"
    cp -f "$tmp"/run_*.txt "$tmp"/shard_*.json "$SMOKE_LOG_DIR"/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "shard-smoke: building icnbench"
go build -o "$tmp/icnbench" ./cmd/icnbench

run() {
  "$tmp/icnbench" -shards "$SHARDS" -replicas "$REPLICAS" -seed "$SEED" \
    -scale "$SCALE" -trees "$TREES" \
    -shardclients 2 -shardbatches 6 -shardrecords 500 \
    -shardjson "$tmp/shard_$1.json" 2>&1 | tee "$tmp/run_$1.txt"
}

echo "shard-smoke: run 1 (seed=$SEED shards=$SHARDS replicas=$REPLICAS)"
run 1
echo "shard-smoke: run 2 (same seed — ring placement must reproduce)"
run 2

grep -q 'shard PASS' "$tmp/run_1.txt" && grep -q 'shard PASS' "$tmp/run_2.txt" || {
  echo "shard-smoke: FAIL — a run did not pass its invariants" >&2
  exit 1
}
grep -q 'killed shard' "$tmp/run_1.txt" || {
  echo "shard-smoke: FAIL — no shard was killed mid-soak" >&2
  exit 1
}
grep -q 'killed replica' "$tmp/run_1.txt" || {
  echo "shard-smoke: FAIL — no replica was killed mid-soak" >&2
  exit 1
}

field() { sed -n "s/.*\"$2\": \"\{0,1\}\([0-9a-fx]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$tmp/shard_$1.json" | head -1; }
for key in ring_digest acked_records folded_records; do
  v1="$(field 1 "$key")"
  v2="$(field 2 "$key")"
  [[ -n "$v1" && "$v1" == "$v2" ]] || {
    echo "shard-smoke: FAIL — $key diverged between identical-seed runs ($v1 vs $v2)" >&2
    exit 1
  }
  echo "shard-smoke: $key reproduced ($v1)"
done

acked="$(field 1 acked_records)"
folded="$(field 1 folded_records)"
[[ "$acked" == "$folded" && "$acked" != "0" ]] || {
  echo "shard-smoke: FAIL — acked ($acked) != folded ($folded)" >&2
  exit 1
}
echo "shard-smoke: PASS"
